#include "spice/workspace.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "trace/names.hpp"
#include "trace/trace.hpp"

namespace autockt::spice {

namespace {

// Process-wide kernel counters (relaxed atomics: telemetry, not
// synchronization). Aggregated across topologies and threads; surfaced
// through SizingProblem::eval_stats().
std::atomic<long> g_newton{0};
std::atomic<long> g_symbolic{0};
std::atomic<long> g_numeric{0};
std::atomic<long> g_dense_fallback{0};
std::atomic<long> g_warm_attempts{0};
std::atomic<long> g_warm_hits{0};
std::atomic<long> g_batch_refactor{0};
std::atomic<long> g_batch_lanes{0};
std::atomic<long> g_batch_lane_fallback{0};

}  // namespace

KernelStats kernel_stats_snapshot() {
  KernelStats s;
  s.newton_iterations = g_newton.load(std::memory_order_relaxed);
  s.symbolic_factorizations = g_symbolic.load(std::memory_order_relaxed);
  s.numeric_factorizations = g_numeric.load(std::memory_order_relaxed);
  s.dense_fallbacks = g_dense_fallback.load(std::memory_order_relaxed);
  s.warm_start_attempts = g_warm_attempts.load(std::memory_order_relaxed);
  s.warm_start_hits = g_warm_hits.load(std::memory_order_relaxed);
  s.batch_refactorizations = g_batch_refactor.load(std::memory_order_relaxed);
  s.batch_lanes = g_batch_lanes.load(std::memory_order_relaxed);
  s.batch_lane_fallbacks =
      g_batch_lane_fallback.load(std::memory_order_relaxed);
  return s;
}

void reset_kernel_stats() {
  g_newton.store(0, std::memory_order_relaxed);
  g_symbolic.store(0, std::memory_order_relaxed);
  g_numeric.store(0, std::memory_order_relaxed);
  g_dense_fallback.store(0, std::memory_order_relaxed);
  g_warm_attempts.store(0, std::memory_order_relaxed);
  g_warm_hits.store(0, std::memory_order_relaxed);
  g_batch_refactor.store(0, std::memory_order_relaxed);
  g_batch_lanes.store(0, std::memory_order_relaxed);
  g_batch_lane_fallback.store(0, std::memory_order_relaxed);
}

namespace kernel_counters {
// These are the single choke points for Newton/warm-start accounting, so
// the trace counters mirror the atomics here rather than at every solver
// call site.
void add_newton_iterations(long n) {
  g_newton.fetch_add(n, std::memory_order_relaxed);
  trace::counter(trace::names::kSimNewtonIterations, n);
}
void add_warm_start_attempt() {
  g_warm_attempts.fetch_add(1, std::memory_order_relaxed);
  trace::counter(trace::names::kSimWarmStartAttempt);
}
void add_warm_start_hit() {
  g_warm_hits.fetch_add(1, std::memory_order_relaxed);
  trace::counter(trace::names::kSimWarmStartHit);
}
}  // namespace kernel_counters

SimWorkspace::SimWorkspace(const Circuit& circuit, Sides sides)
    : n_(circuit.num_unknowns()),
      num_nodes_(circuit.num_nodes()),
      num_branches_(circuit.num_branches()),
      num_devices_(circuit.devices().size()),
      zero_voltages_(circuit.num_nodes(), 0.0) {
  trace::TraceSpan span(trace::names::kSimBuildWorkspace);
  if (sides != Sides::Complex) build_real(circuit);
  if (sides != Sides::Real) build_complex(circuit);
}

void SimWorkspace::build_real(const Circuit& circuit) {
  real_built_ = true;
  rhs_real_.assign(n_, 0.0);
  x_real_.assign(n_, 0.0);

  // ---- real pattern discovery -------------------------------------------
  {
    linalg::PatternBuilder builder(n_);
    RealStamp ctx{MnaSink(builder), rhs_real_, zero_voltages_};
    ctx.num_nodes = num_nodes_;
    circuit.declare_real_pattern(ctx);
    // Weak slots: structurally present, often numerically zero — kept out
    // of the pivot order while strong candidates remain.
    for (NodeId n = 1; n < num_nodes_; ++n) {
      builder.add(n - 1, n - 1, /*weak=*/true);  // gmin homotopy diagonal
    }
    for (const CapElement& e : circuit.collect_caps()) {
      // Transient companion conductance footprint (zero during DC solves).
      const bool g1 = e.n1 == kGround, g2 = e.n2 == kGround;
      if (!g1) builder.add(e.n1 - 1, e.n1 - 1, true);
      if (!g2) builder.add(e.n2 - 1, e.n2 - 1, true);
      if (!g1 && !g2) {
        builder.add(e.n1 - 1, e.n2 - 1, true);
        builder.add(e.n2 - 1, e.n1 - 1, true);
      }
    }
    std::fill(rhs_real_.begin(), rhs_real_.end(), 0.0);  // discovery scribbles
    pattern_real_ = linalg::SparsePattern(std::move(builder));
  }
  sym_real_ = linalg::SparseLuSymbolic(pattern_real_, pattern_real_.weak());
  g_symbolic.fetch_add(1, std::memory_order_relaxed);
  lu_real_ = linalg::SparseLuNumeric<double>(sym_real_);
  vals_real_.assign(pattern_real_.nnz(), 0.0);
  real_slot_row_.resize(pattern_real_.nnz());
  real_slot_col_.resize(pattern_real_.nnz());
  for (std::size_t s = 0; s < pattern_real_.nnz(); ++s) {
    real_slot_row_[s] = pattern_real_.row_of_slot(s);
    real_slot_col_[s] = pattern_real_.col_of_slot(s);
  }
  dense_real_ = linalg::RealMatrix(n_, n_);
}

void SimWorkspace::build_complex(const Circuit& circuit) {
  cplx_built_ = true;
  rhs_cplx_.assign(n_, {0.0, 0.0});
  x_cplx_.assign(n_, {0.0, 0.0});

  // ---- complex (G/C union) pattern discovery ----------------------------
  {
    linalg::PatternBuilder builder(n_);
    ComplexStamp ctx{MnaSink(builder), MnaSink(builder),
                     rhs_cplx_, zero_voltages_};
    ctx.num_nodes = num_nodes_;
    circuit.declare_complex_pattern(ctx);
    std::fill(rhs_cplx_.begin(), rhs_cplx_.end(),
              std::complex<double>{0.0, 0.0});
    pattern_cplx_ = linalg::SparsePattern(std::move(builder));
  }
  sym_cplx_ = linalg::SparseLuSymbolic(pattern_cplx_, pattern_cplx_.weak());
  g_symbolic.fetch_add(1, std::memory_order_relaxed);
  lu_cplx_ = linalg::SparseLuNumeric<std::complex<double>>(sym_cplx_);
  g_vals_.assign(pattern_cplx_.nnz(), 0.0);
  c_vals_.assign(pattern_cplx_.nnz(), 0.0);
  y_vals_.assign(pattern_cplx_.nnz(), {0.0, 0.0});
  cplx_slot_row_.resize(pattern_cplx_.nnz());
  cplx_slot_col_.resize(pattern_cplx_.nnz());
  for (std::size_t s = 0; s < pattern_cplx_.nnz(); ++s) {
    cplx_slot_row_[s] = pattern_cplx_.row_of_slot(s);
    cplx_slot_col_[s] = pattern_cplx_.col_of_slot(s);
  }
  dense_cplx_ = linalg::ComplexMatrix(n_, n_);
}

bool SimWorkspace::compatible(const Circuit& circuit) const {
  return circuit.num_unknowns() == n_ && circuit.num_nodes() == num_nodes_ &&
         circuit.num_branches() == num_branches_ &&
         circuit.devices().size() == num_devices_;
}

RealStamp SimWorkspace::begin_real(const std::vector<double>& node_v) {
  trace::counter(trace::names::kSimRestampReal);
  std::fill(vals_real_.begin(), vals_real_.end(), 0.0);
  std::fill(rhs_real_.begin(), rhs_real_.end(), 0.0);
  RealStamp ctx{MnaSink(pattern_real_, vals_real_.data()), rhs_real_,
                node_v};
  ctx.num_nodes = num_nodes_;
  return ctx;
}

bool SimWorkspace::factor_real() {
  trace::TraceSpan span(trace::names::kSimFactorReal);
  g_numeric.fetch_add(1, std::memory_order_relaxed);
  if (sym_real_.ok() && lu_real_.refactor(vals_real_.data())) {
    real_sparse_ok_ = true;
    return true;
  }
  // Scale-aware pivot check failed (or the pattern is structurally odd):
  // deterministic dense partial-pivot fallback on the same values.
  real_sparse_ok_ = false;
  g_dense_fallback.fetch_add(1, std::memory_order_relaxed);
  trace::counter(trace::names::kSimDenseFallback);
  dense_real_.fill(0.0);
  for (std::size_t s = 0; s < vals_real_.size(); ++s) {
    dense_real_(static_cast<std::size_t>(real_slot_row_[s]),
                static_cast<std::size_t>(real_slot_col_[s])) += vals_real_[s];
  }
  dense_lu_real_.emplace(dense_real_);
  return dense_lu_real_->ok();
}

const std::vector<double>& SimWorkspace::solve_real() {
  trace::TraceSpan span(trace::names::kSimSolveReal);
  if (real_sparse_ok_) {
    lu_real_.solve(rhs_real_.data(), x_real_.data());
  } else {
    x_real_ = dense_lu_real_->solve(rhs_real_);
  }
  return x_real_;
}

ComplexStamp SimWorkspace::begin_complex(
    const std::vector<double>& op_voltages) {
  trace::counter(trace::names::kSimRestampComplex);
  std::fill(g_vals_.begin(), g_vals_.end(), 0.0);
  std::fill(c_vals_.begin(), c_vals_.end(), 0.0);
  std::fill(rhs_cplx_.begin(), rhs_cplx_.end(),
            std::complex<double>{0.0, 0.0});
  ComplexStamp ctx{MnaSink(pattern_cplx_, g_vals_.data()),
                   MnaSink(pattern_cplx_, c_vals_.data()), rhs_cplx_,
                   op_voltages};
  ctx.num_nodes = num_nodes_;
  return ctx;
}

bool SimWorkspace::factor_complex(double omega) {
  trace::TraceSpan span(trace::names::kSimFactorComplex);
  g_numeric.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t s = 0; s < y_vals_.size(); ++s) {
    y_vals_[s] = {g_vals_[s], omega * c_vals_[s]};
  }
  if (sym_cplx_.ok() && lu_cplx_.refactor(y_vals_.data())) {
    cplx_sparse_ok_ = true;
    return true;
  }
  cplx_sparse_ok_ = false;
  g_dense_fallback.fetch_add(1, std::memory_order_relaxed);
  trace::counter(trace::names::kSimDenseFallback);
  dense_cplx_.fill({0.0, 0.0});
  for (std::size_t s = 0; s < y_vals_.size(); ++s) {
    dense_cplx_(static_cast<std::size_t>(cplx_slot_row_[s]),
                static_cast<std::size_t>(cplx_slot_col_[s])) += y_vals_[s];
  }
  dense_lu_cplx_.emplace(dense_cplx_);
  return dense_lu_cplx_->ok();
}

const std::vector<std::complex<double>>& SimWorkspace::solve_complex() {
  trace::TraceSpan span(trace::names::kSimSolveComplex);
  if (cplx_sparse_ok_) {
    lu_cplx_.solve(rhs_cplx_.data(), x_cplx_.data());
  } else {
    x_cplx_ = dense_lu_cplx_->solve(rhs_cplx_);
  }
  return x_cplx_;
}

const std::vector<std::complex<double>>&
SimWorkspace::solve_complex_transposed(
    const std::vector<std::complex<double>>& rhs) {
  trace::TraceSpan span(trace::names::kSimSolveComplex);
  if (cplx_sparse_ok_) {
    lu_cplx_.solve_transposed(rhs.data(), x_cplx_.data());
  } else {
    x_cplx_ = dense_lu_cplx_->solve_transposed(rhs);
  }
  return x_cplx_;
}

void SimWorkspace::ensure_real_batch(std::size_t lanes) {
  if (lanes == batch_lanes_real_) return;
  batch_lanes_real_ = lanes;
  lu_real_batch_.reset(sym_real_, lanes);
  batch_vals_real_.assign(pattern_real_.nnz() * lanes, 0.0);
  batch_rhs_real_.assign(n_ * lanes, 0.0);
  batch_x_real_.assign(n_ * lanes, 0.0);
  real_lane_ok_.assign(lanes, 0);
  real_lane_solvable_.assign(lanes, 0);
  dense_lu_real_lanes_.assign(lanes, std::nullopt);
}

void SimWorkspace::commit_real_batch_lane(std::size_t lane) {
  const std::size_t K = batch_lanes_real_;
  for (std::size_t s = 0; s < vals_real_.size(); ++s) {
    batch_vals_real_[s * K + lane] = vals_real_[s];
  }
  for (std::size_t i = 0; i < n_; ++i) {
    batch_rhs_real_[i * K + lane] = rhs_real_[i];
  }
}

bool SimWorkspace::factor_real_batch() {
  trace::TraceSpan span(trace::names::kSimFactorRealBatch);
  const std::size_t K = batch_lanes_real_;
  g_numeric.fetch_add(static_cast<long>(K), std::memory_order_relaxed);
  g_batch_refactor.fetch_add(1, std::memory_order_relaxed);
  g_batch_lanes.fetch_add(static_cast<long>(K), std::memory_order_relaxed);
  trace::counter(trace::names::kSimBatchRefactor);
  trace::counter(trace::names::kSimBatchLanes, static_cast<std::int64_t>(K));
  if (sym_real_.ok()) {
    lu_real_batch_.refactor(batch_vals_real_.data(), real_lane_ok_.data());
  } else {
    std::fill(real_lane_ok_.begin(), real_lane_ok_.end(), 0);
  }
  bool all_ok = true;
  for (std::size_t l = 0; l < K; ++l) {
    if (real_lane_ok_[l] != 0) {
      real_lane_solvable_[l] = 1;
      dense_lu_real_lanes_[l].reset();
      continue;
    }
    // Same deterministic fallback as the scalar kernel, applied per lane:
    // dense partial-pivot LU over exactly this lane's stamped values.
    g_dense_fallback.fetch_add(1, std::memory_order_relaxed);
    g_batch_lane_fallback.fetch_add(1, std::memory_order_relaxed);
    trace::counter(trace::names::kSimDenseFallback);
    trace::counter(trace::names::kSimBatchLaneFallback);
    dense_real_.fill(0.0);
    for (std::size_t s = 0; s < vals_real_.size(); ++s) {
      dense_real_(static_cast<std::size_t>(real_slot_row_[s]),
                  static_cast<std::size_t>(real_slot_col_[s])) +=
          batch_vals_real_[s * K + l];
    }
    dense_lu_real_lanes_[l].emplace(dense_real_);
    real_lane_solvable_[l] =
        static_cast<unsigned char>(dense_lu_real_lanes_[l]->ok() ? 1 : 0);
    all_ok = all_ok && real_lane_solvable_[l] != 0;
  }
  return all_ok;
}

bool SimWorkspace::real_lane_solvable(std::size_t lane) const {
  return real_lane_solvable_[lane] != 0;
}

const std::vector<double>& SimWorkspace::solve_real_batch() {
  trace::TraceSpan span(trace::names::kSimSolveRealBatch);
  const std::size_t K = batch_lanes_real_;
  lu_real_batch_.solve(batch_rhs_real_.data(), batch_x_real_.data());
  for (std::size_t l = 0; l < K; ++l) {
    if (real_lane_ok_[l] != 0 || !dense_lu_real_lanes_[l].has_value() ||
        !dense_lu_real_lanes_[l]->ok()) {
      continue;
    }
    std::vector<double> b(n_);
    for (std::size_t i = 0; i < n_; ++i) b[i] = batch_rhs_real_[i * K + l];
    const std::vector<double> x = dense_lu_real_lanes_[l]->solve(b);
    for (std::size_t i = 0; i < n_; ++i) batch_x_real_[i * K + l] = x[i];
  }
  return batch_x_real_;
}

void SimWorkspace::real_lane_solution(std::size_t lane,
                                      std::vector<double>& out) const {
  const std::size_t K = batch_lanes_real_;
  out.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = batch_x_real_[i * K + lane];
}

void SimWorkspace::ensure_complex_batch(std::size_t lanes) {
  if (lanes == batch_lanes_cplx_) return;
  batch_lanes_cplx_ = lanes;
  lu_cplx_batch_.reset(sym_cplx_, lanes);
  batch_g_vals_.assign(pattern_cplx_.nnz() * lanes, 0.0);
  batch_c_vals_.assign(pattern_cplx_.nnz() * lanes, 0.0);
  batch_rhs_cplx_.assign(n_ * lanes, {0.0, 0.0});
  batch_x_cplx_.assign(n_ * lanes, {0.0, 0.0});
  batch_bcast_cplx_.assign(n_ * lanes, {0.0, 0.0});
  cplx_lane_ok_.assign(lanes, 0);
  cplx_lane_solvable_.assign(lanes, 0);
  dense_lu_cplx_lanes_.assign(lanes, std::nullopt);
}

void SimWorkspace::commit_complex_batch_lane(std::size_t lane) {
  const std::size_t K = batch_lanes_cplx_;
  for (std::size_t s = 0; s < g_vals_.size(); ++s) {
    batch_g_vals_[s * K + lane] = g_vals_[s];
    batch_c_vals_[s * K + lane] = c_vals_[s];
  }
  for (std::size_t i = 0; i < n_; ++i) {
    batch_rhs_cplx_[i * K + lane] = rhs_cplx_[i];
  }
}

bool SimWorkspace::factor_complex_batch(double omega) {
  trace::TraceSpan span(trace::names::kSimFactorComplexBatch);
  const std::size_t K = batch_lanes_cplx_;
  g_numeric.fetch_add(static_cast<long>(K), std::memory_order_relaxed);
  g_batch_refactor.fetch_add(1, std::memory_order_relaxed);
  g_batch_lanes.fetch_add(static_cast<long>(K), std::memory_order_relaxed);
  trace::counter(trace::names::kSimBatchRefactor);
  trace::counter(trace::names::kSimBatchLanes, static_cast<std::int64_t>(K));
  if (sym_cplx_.ok()) {
    // Fused y = g + i*omega*c formation inside the kernel's scatter pass:
    // no interleaved complex array is materialized per frequency point.
    lu_cplx_batch_.refactor_gc(batch_g_vals_.data(), batch_c_vals_.data(),
                               omega, cplx_lane_ok_.data());
  } else {
    std::fill(cplx_lane_ok_.begin(), cplx_lane_ok_.end(), 0);
  }
  bool all_ok = true;
  for (std::size_t l = 0; l < K; ++l) {
    if (cplx_lane_ok_[l] != 0) {
      cplx_lane_solvable_[l] = 1;
      dense_lu_cplx_lanes_[l].reset();
      continue;
    }
    g_dense_fallback.fetch_add(1, std::memory_order_relaxed);
    g_batch_lane_fallback.fetch_add(1, std::memory_order_relaxed);
    trace::counter(trace::names::kSimDenseFallback);
    trace::counter(trace::names::kSimBatchLaneFallback);
    dense_cplx_.fill({0.0, 0.0});
    for (std::size_t s = 0; s < g_vals_.size(); ++s) {
      dense_cplx_(static_cast<std::size_t>(cplx_slot_row_[s]),
                  static_cast<std::size_t>(cplx_slot_col_[s])) +=
          std::complex<double>(batch_g_vals_[s * K + l],
                               omega * batch_c_vals_[s * K + l]);
    }
    dense_lu_cplx_lanes_[l].emplace(dense_cplx_);
    cplx_lane_solvable_[l] =
        static_cast<unsigned char>(dense_lu_cplx_lanes_[l]->ok() ? 1 : 0);
    all_ok = all_ok && cplx_lane_solvable_[l] != 0;
  }
  return all_ok;
}

bool SimWorkspace::complex_lane_solvable(std::size_t lane) const {
  return cplx_lane_solvable_[lane] != 0;
}

const std::vector<std::complex<double>>& SimWorkspace::solve_complex_batch() {
  trace::TraceSpan span(trace::names::kSimSolveComplexBatch);
  const std::size_t K = batch_lanes_cplx_;
  lu_cplx_batch_.solve(batch_rhs_cplx_.data(), batch_x_cplx_.data());
  for (std::size_t l = 0; l < K; ++l) {
    if (cplx_lane_ok_[l] != 0 || !dense_lu_cplx_lanes_[l].has_value() ||
        !dense_lu_cplx_lanes_[l]->ok()) {
      continue;
    }
    std::vector<std::complex<double>> b(n_);
    for (std::size_t i = 0; i < n_; ++i) b[i] = batch_rhs_cplx_[i * K + l];
    const std::vector<std::complex<double>> x =
        dense_lu_cplx_lanes_[l]->solve(b);
    for (std::size_t i = 0; i < n_; ++i) batch_x_cplx_[i * K + l] = x[i];
  }
  return batch_x_cplx_;
}

const std::vector<std::complex<double>>&
SimWorkspace::solve_complex_transposed_batch(
    const std::vector<std::complex<double>>& rhs) {
  trace::TraceSpan span(trace::names::kSimSolveComplexBatch);
  const std::size_t K = batch_lanes_cplx_;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t l = 0; l < K; ++l) batch_bcast_cplx_[i * K + l] = rhs[i];
  }
  lu_cplx_batch_.solve_transposed(batch_bcast_cplx_.data(),
                                  batch_x_cplx_.data());
  for (std::size_t l = 0; l < K; ++l) {
    if (cplx_lane_ok_[l] != 0 || !dense_lu_cplx_lanes_[l].has_value() ||
        !dense_lu_cplx_lanes_[l]->ok()) {
      continue;
    }
    const std::vector<std::complex<double>> x =
        dense_lu_cplx_lanes_[l]->solve_transposed(rhs);
    for (std::size_t i = 0; i < n_; ++i) batch_x_cplx_[i * K + l] = x[i];
  }
  return batch_x_cplx_;
}

void SimWorkspace::complex_lane_solution(
    std::size_t lane, std::vector<std::complex<double>>& out) const {
  const std::size_t K = batch_lanes_cplx_;
  out.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = batch_x_cplx_[i * K + lane];
}

SimWorkspace& workspace_for(const Circuit& circuit,
                            const std::string& topology_key) {
  thread_local std::unordered_map<std::string, std::unique_ptr<SimWorkspace>>
      cache;
  std::unique_ptr<SimWorkspace>& slot = cache[topology_key];
  if (!slot || !slot->compatible(circuit)) {
    slot = std::make_unique<SimWorkspace>(circuit);
  }
  return *slot;
}

}  // namespace autockt::spice
