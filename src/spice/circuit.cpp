#include "spice/circuit.hpp"

#include <stdexcept>

namespace autockt::spice {

NodeId Circuit::add_node(const std::string& name) {
  if (node_ids_.count(name) > 0) {
    throw std::invalid_argument("duplicate node name: " + name);
  }
  const NodeId id = node_names_.size();
  node_names_.push_back(name);
  node_ids_[name] = id;
  return id;
}

NodeId Circuit::node(const std::string& name) const {
  if (name == "0" || name == "gnd") return kGround;
  auto it = node_ids_.find(name);
  if (it == node_ids_.end()) {
    throw std::out_of_range("unknown node: " + name);
  }
  return it->second;
}

const Device* Circuit::find(const std::string& name) const {
  for (const auto& dev : devices_) {
    if (dev->name() == name) return dev.get();
  }
  return nullptr;
}

void Circuit::stamp_real(RealStamp& ctx) const {
  for (const auto& dev : devices_) dev->stamp_real(ctx);
  if (ctx.gmin > 0.0) {
    // Homotopy: small conductance from every node to ground.
    for (NodeId n = 1; n < num_nodes(); ++n) {
      ctx.add_a(ctx.row_of_node(n), ctx.row_of_node(n), ctx.gmin);
    }
  }
}

void Circuit::stamp_complex(ComplexStamp& ctx) const {
  for (const auto& dev : devices_) dev->stamp_complex(ctx);
}

void Circuit::declare_real_pattern(RealStamp& ctx) const {
  for (const auto& dev : devices_) dev->declare_real_pattern(ctx);
}

void Circuit::declare_complex_pattern(ComplexStamp& ctx) const {
  for (const auto& dev : devices_) dev->declare_complex_pattern(ctx);
}

std::vector<CapElement> Circuit::collect_caps() const {
  std::vector<CapElement> out;
  for (const auto& dev : devices_) dev->collect_caps(out);
  return out;
}

std::vector<NoiseSource> Circuit::collect_noise(
    const std::vector<double>& op_voltages, double freq, double temp_k) const {
  std::vector<NoiseSource> out;
  collect_noise(op_voltages, freq, temp_k, out);
  return out;
}

void Circuit::collect_noise(const std::vector<double>& op_voltages,
                            double freq, double temp_k,
                            std::vector<NoiseSource>& out) const {
  out.clear();
  for (const auto& dev : devices_) {
    dev->collect_noise(op_voltages, freq, temp_k, out);
  }
}

OpPoint Circuit::unpack(const std::vector<double>& x) const {
  OpPoint op;
  op.node_v.assign(num_nodes(), 0.0);
  for (NodeId n = 1; n < num_nodes(); ++n) op.node_v[n] = x[n - 1];
  op.branch_i.assign(num_branches(), 0.0);
  for (std::size_t b = 0; b < num_branches(); ++b) {
    op.branch_i[b] = x[(num_nodes() - 1) + b];
  }
  return op;
}

}  // namespace autockt::spice
