#pragma once
// Internals shared by the AC and noise engines: the log-spaced sweep grid
// (one definition, so the two analyses can never desynchronize) and the
// dense reference assembly — G and C stamped once per operating point (the
// same restamp-free scheme as the sparse kernel), but every frequency point
// builds a fresh dense complex matrix and partial-pivot LU; the legacy cost
// model the parity tests and benchmarks compare the workspace kernel
// against.

#include <algorithm>
#include <cmath>
#include <complex>
#include <optional>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "spice/circuit.hpp"

namespace autockt::spice::detail {

/// Number of points of a log-spaced sweep at `per_decade` resolution.
inline int sweep_points(double f_start, double f_stop, int per_decade) {
  const double decades = std::log10(f_stop / f_start);
  return std::max(2, static_cast<int>(std::ceil(decades * per_decade)) + 1);
}

/// Frequency of point `i` in a `total`-point log-spaced sweep.
inline double sweep_freq(double f_start, double f_stop, int i, int total) {
  const double decades = std::log10(f_stop / f_start);
  const double frac = static_cast<double>(i) / static_cast<double>(total - 1);
  return f_start * std::pow(10.0, frac * decades);
}

struct DenseAcAssembly {
  linalg::RealMatrix g_mat;
  linalg::RealMatrix c_mat;
  std::vector<std::complex<double>> b;
  linalg::ComplexMatrix y;
  std::optional<linalg::LuFactorization<std::complex<double>>> lu;

  DenseAcAssembly(const Circuit& circuit, const std::vector<double>& op_v)
      : g_mat(circuit.num_unknowns(), circuit.num_unknowns()),
        c_mat(circuit.num_unknowns(), circuit.num_unknowns()),
        b(circuit.num_unknowns(), {0.0, 0.0}),
        y(circuit.num_unknowns(), circuit.num_unknowns()) {
    ComplexStamp ctx{g_mat, c_mat, b, op_v};
    ctx.num_nodes = circuit.num_nodes();
    circuit.stamp_complex(ctx);
  }

  bool factor(double omega) {
    const std::size_t n = y.rows();
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        y(r, c) = {g_mat(r, c), omega * c_mat(r, c)};
      }
    }
    lu.emplace(y);
    return lu->ok();
  }
};

}  // namespace autockt::spice::detail
