#pragma once
// Fixed-step trapezoidal transient analysis. Capacitive elements reported by
// the devices are integrated via companion models whose state (branch
// voltage and current history) is owned by the engine, keeping devices
// stateless and circuit evaluation thread-safe.

#include <vector>

#include "spice/circuit.hpp"
#include "spice/workspace.hpp"
#include "util/expected.hpp"

namespace autockt::spice {

struct TranOptions {
  double t_stop = 1e-9;
  double dt = 1e-12;
  int max_newton = 60;
  double v_abstol = 1e-7;
  double v_reltol = 1e-6;
  double max_step = 0.5;  // Newton damping per iteration (V)
  SimKernel kernel = SimKernel::Sparse;
  /// Reusable workspace (sparse kernel); temporary per call when null.
  SimWorkspace* workspace = nullptr;
};

struct TranResult {
  std::vector<double> time;
  /// waveforms[p][k] = voltage of probes[p] at time[k].
  std::vector<std::vector<double>> waveforms;
};

/// Integrate from the given initial operating point (typically solve_op of
/// the same circuit with sources at their t=0 values).
util::Expected<TranResult> transient(const Circuit& circuit,
                                     const OpPoint& initial,
                                     const std::vector<NodeId>& probes,
                                     const TranOptions& options = {});

}  // namespace autockt::spice
