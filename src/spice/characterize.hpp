#pragma once
// Device characterization sweeps — the I-V and small-signal curves an
// analog designer pulls from a PDK before sizing anything. Used by the
// mosfet_characterization example and by tests that pin the technology
// cards' behaviour.

#include <vector>

#include "spice/mosfet.hpp"

namespace autockt::spice {

struct CurvePoint {
  double x = 0.0;    // swept voltage (V)
  double id = 0.0;   // drain current magnitude (A)
  double gm = 0.0;   // transconductance (S)
  double gds = 0.0;  // output conductance (S)
};

struct SweepSpec {
  double start = 0.0;
  double stop = 1.2;
  int points = 121;
};

/// Id/gm/gds vs Vgs at fixed Vds (source and bulk grounded, NMOS
/// convention; PMOS is mirrored internally so callers always pass positive
/// magnitudes).
std::vector<CurvePoint> id_vgs_curve(const TechCard& card, MosType type,
                                     const MosGeom& geom, double vds,
                                     const SweepSpec& sweep = {});

/// Id/gm/gds vs Vds at fixed Vgs.
std::vector<CurvePoint> id_vds_curve(const TechCard& card, MosType type,
                                     const MosGeom& geom, double vgs,
                                     const SweepSpec& sweep = {});

/// Transition ("trip") voltage of a CMOS inverter built from the card:
/// the input level where output equals input. Bisection on the DC solve.
double inverter_trip_voltage(const TechCard& card, double wn, double wp,
                             double length);

}  // namespace autockt::spice
