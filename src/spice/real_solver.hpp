#pragma once
// Internal kernel drivers shared by the real-valued Newton loops (DC and
// transient): one stamp-factor-solve round on either the sparse workspace
// kernel (numeric-only refactorization, zero allocation) or the legacy
// dense kernel (fresh matrix + partial-pivot LU per call, kept as the
// parity/benchmark reference).

#include <algorithm>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "spice/circuit.hpp"
#include "spice/workspace.hpp"

namespace autockt::spice::detail {

struct StampKnobs {
  double gmin = 0.0;
  double source_scale = 1.0;
  double time = 0.0;
  bool transient = false;
};

struct SparseRealDriver {
  SimWorkspace& ws;

  /// `extra` stamps engine-level terms (transient companions) after the
  /// circuit; pass a no-op for DC.
  template <typename Extra>
  bool solve(const Circuit& circuit, const std::vector<double>& node_v,
             const StampKnobs& knobs, Extra&& extra,
             std::vector<double>& x_out) {
    RealStamp ctx = ws.begin_real(node_v);
    ctx.gmin = knobs.gmin;
    ctx.source_scale = knobs.source_scale;
    ctx.time = knobs.time;
    ctx.transient = knobs.transient;
    circuit.stamp_real(ctx);
    extra(ctx);
    if (!ws.factor_real()) return false;
    x_out = ws.solve_real();
    return true;
  }
};

struct DenseRealDriver {
  linalg::RealMatrix a;
  std::vector<double> b;

  explicit DenseRealDriver(std::size_t n) : a(n, n), b(n, 0.0) {}

  template <typename Extra>
  bool solve(const Circuit& circuit, const std::vector<double>& node_v,
             const StampKnobs& knobs, Extra&& extra,
             std::vector<double>& x_out) {
    a.fill(0.0);
    std::fill(b.begin(), b.end(), 0.0);
    RealStamp ctx{a, b, node_v};
    ctx.gmin = knobs.gmin;
    ctx.source_scale = knobs.source_scale;
    ctx.time = knobs.time;
    ctx.transient = knobs.transient;
    ctx.num_nodes = circuit.num_nodes();
    circuit.stamp_real(ctx);
    extra(ctx);
    linalg::LuFactorization<double> lu(a);
    if (!lu.ok()) return false;
    x_out = lu.solve(b);
    return true;
  }
};

inline constexpr auto kNoExtraStamps = [](RealStamp&) {};

}  // namespace autockt::spice::detail
