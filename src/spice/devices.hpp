#pragma once
// Linear and source devices: resistor, capacitor, independent voltage and
// current sources, and a voltage-controlled current source.

#include <complex>
#include <vector>

#include "spice/device.hpp"
#include "spice/waveform.hpp"

namespace autockt::spice {

class Resistor : public Device {
 public:
  Resistor(std::string name, NodeId n1, NodeId n2, double ohms);

  double resistance() const { return ohms_; }

  void stamp_real(RealStamp& ctx) const override;
  void stamp_complex(ComplexStamp& ctx) const override;
  void collect_noise(const std::vector<double>& op_voltages, double freq,
                     double temp_k,
                     std::vector<NoiseSource>& out) const override;
  DeviceTopology topology() const override {
    return {DeviceTopology::Kind::Resistor, {n1_, n2_}, {{n1_, n2_}}};
  }

 private:
  NodeId n1_, n2_;
  double ohms_;
};

class Capacitor : public Device {
 public:
  Capacitor(std::string name, NodeId n1, NodeId n2, double farads);

  double capacitance() const { return farads_; }

  // Open circuit at DC; the transient engine adds the companion stamp.
  void stamp_real(RealStamp& ctx) const override;
  void stamp_complex(ComplexStamp& ctx) const override;
  void collect_caps(std::vector<CapElement>& out) const override;
  DeviceTopology topology() const override {
    return {DeviceTopology::Kind::Capacitor, {n1_, n2_}, {}};
  }

 private:
  NodeId n1_, n2_;
  double farads_;
};

/// Independent voltage source (adds one branch-current unknown). The branch
/// current is defined as flowing from `plus` through the source to `minus`;
/// the current a supply delivers into the circuit is therefore -i_branch.
class VoltageSource : public Device {
 public:
  VoltageSource(std::string name, NodeId plus, NodeId minus, Waveform wave,
                double ac_mag = 0.0);

  std::size_t branch_count() const override { return 1; }

  void stamp_real(RealStamp& ctx) const override;
  void stamp_complex(ComplexStamp& ctx) const override;

  double dc_value() const { return wave_.dc(); }

  DeviceTopology topology() const override {
    return {DeviceTopology::Kind::VoltageSource,
            {plus_, minus_},
            {{plus_, minus_}}};
  }

 private:
  NodeId plus_, minus_;
  Waveform wave_;
  double ac_mag_;
};

/// Independent current source; positive current flows from `plus` through
/// the source to `minus` (i.e. is injected into `minus`).
class CurrentSource : public Device {
 public:
  CurrentSource(std::string name, NodeId plus, NodeId minus, Waveform wave,
                double ac_mag = 0.0);

  void stamp_real(RealStamp& ctx) const override;
  void stamp_complex(ComplexStamp& ctx) const override;

  DeviceTopology topology() const override {
    return {DeviceTopology::Kind::CurrentSource, {plus_, minus_}, {}};
  }

 private:
  NodeId plus_, minus_;
  Waveform wave_;
  double ac_mag_;
};

/// Ideal DC bias servo (nullor pattern): injects whatever current into
/// `bias_node` is needed so that `sense_node` sits exactly at `target_v` in
/// the DC solution — the algebraic equivalent of the integrator servo loop
/// analog designers wrap around an op-amp to bias it open-loop. In AC/noise
/// analyses the element instead pins `bias_node` to AC ground, leaving the
/// amplifier open-loop. Adds one branch unknown (the servo current, which is
/// zero at any valid DC solution because MOS gates draw no current).
class BiasProbe : public Device {
 public:
  BiasProbe(std::string name, NodeId bias_node, NodeId sense_node,
            double target_v);

  std::size_t branch_count() const override { return 1; }

  void stamp_real(RealStamp& ctx) const override;
  void stamp_complex(ComplexStamp& ctx) const override;

  // The nullor determines the bias-node voltage through the sense-node
  // constraint, so for DC-path purposes the two ports are connected.
  DeviceTopology topology() const override {
    return {DeviceTopology::Kind::BiasProbe,
            {bias_node_, sense_node_},
            {{bias_node_, sense_node_}}};
  }

 private:
  NodeId bias_node_, sense_node_;
  double target_v_;
};

/// Voltage-controlled current source: i(out_p -> out_m) = gm * v(in_p, in_m).
class Vccs : public Device {
 public:
  Vccs(std::string name, NodeId out_p, NodeId out_m, NodeId in_p, NodeId in_m,
       double gm);

  void stamp_real(RealStamp& ctx) const override;
  void stamp_complex(ComplexStamp& ctx) const override;

  // Neither port conducts at DC: the output is an ideal current source and
  // the input draws no current, so no dc_paths.
  DeviceTopology topology() const override {
    return {DeviceTopology::Kind::Vccs, {out_p_, out_m_, in_p_, in_m_}, {}};
  }

 private:
  NodeId out_p_, out_m_, in_p_, in_m_;
  double gm_;
};

}  // namespace autockt::spice
