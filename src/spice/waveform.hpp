#pragma once
// Time-domain source waveforms for transient analysis. Steps use a short
// linear ramp instead of an ideal discontinuity so Newton iterations at the
// step edge stay well-conditioned.

#include <algorithm>

namespace autockt::spice {

struct Waveform {
  enum class Kind { Constant, Step, Pulse };

  Kind kind = Kind::Constant;
  double base = 0.0;    // value before t0 (and DC value)
  double level = 0.0;   // value after the edge
  double t0 = 0.0;      // edge start time
  double t_rise = 1e-12;  // linear ramp duration
  double t_width = 0.0;   // pulse width (Pulse only)

  static Waveform constant(double value) {
    Waveform w;
    w.kind = Kind::Constant;
    w.base = value;
    return w;
  }

  static Waveform step(double from, double to, double at, double rise = 1e-12) {
    Waveform w;
    w.kind = Kind::Step;
    w.base = from;
    w.level = to;
    w.t0 = at;
    w.t_rise = rise;
    return w;
  }

  static Waveform pulse(double from, double to, double at, double width,
                        double rise = 1e-12) {
    Waveform w = step(from, to, at, rise);
    w.kind = Kind::Pulse;
    w.t_width = width;
    return w;
  }

  /// Value at time `t`; DC analyses use value(0) semantics via dc().
  double value(double t) const {
    switch (kind) {
      case Kind::Constant:
        return base;
      case Kind::Step: {
        const double ramp = std::clamp((t - t0) / t_rise, 0.0, 1.0);
        return base + (level - base) * ramp;
      }
      case Kind::Pulse: {
        const double up = std::clamp((t - t0) / t_rise, 0.0, 1.0);
        const double down =
            std::clamp((t - (t0 + t_width)) / t_rise, 0.0, 1.0);
        return base + (level - base) * (up - down);
      }
    }
    return base;
  }

  /// Operating-point value (time-zero; steps are at their base level).
  double dc() const { return base; }
};

}  // namespace autockt::spice
