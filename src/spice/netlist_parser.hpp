#pragma once
// SPICE-dialect netlist parser: lets users drive the simulator from text
// decks instead of the C++ builder API (see examples/netlist_cli.cpp).
//
// Supported grammar (case-insensitive keywords, '*' comments, one element
// per line, engineering suffixes f p n u m k meg g t on all numbers):
//
//   .title <anything>
//   .card ptm45 | finfet16          default technology card for M devices
//   V<name> n+ n- dc <v> [ac <mag>] [step <v0> <v1> <t0> <trise>]
//   I<name> n+ n- dc <i> [ac <mag>] [step <i0> <i1> <t0> <trise>]
//   R<name> n1 n2 <ohms>
//   C<name> n1 n2 <farads>
//   G<name> out+ out- in+ in- <gm>  voltage-controlled current source
//   M<name> d g s b nmos|pmos w=<m> l=<m> [mult=<int>] [card=<name>]
//   B<name> bias sense <target_v>   ideal bias servo (nullor)
//   .nodeset <node> <volts>         initial DC guess for a node
//   .op                             request a DC operating point
//   .ac <probe_node> <f_start> <f_stop> [points_per_decade]
//   .tran <probe_node> <t_stop> <dt>
//   .noise <probe_node> <f_start> <f_stop>
//   .end
//
// Node names are arbitrary identifiers; "0" and "gnd" are ground. Nodes are
// created on first use.

#include <string>
#include <vector>

#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/noise.hpp"
#include "spice/transient.hpp"
#include "util/expected.hpp"

namespace autockt::spice {

struct AcRequest {
  std::string probe;
  AcOptions options;
};

struct TranRequest {
  std::string probe;
  TranOptions options;
};

struct NoiseRequest {
  std::string probe;
  NoiseOptions options;
};

/// A parsed deck: the circuit plus the analyses the deck requested.
struct ParsedNetlist {
  Circuit circuit;
  std::string title;
  bool want_op = false;
  std::vector<AcRequest> ac;
  std::vector<TranRequest> tran;
  std::vector<NoiseRequest> noise;
  /// .nodeset entries, resolved to node ids (see initial_node_voltages()).
  std::vector<std::pair<NodeId, double>> nodesets;

  /// Initial-guess vector for spice::DcOptions built from the .nodeset
  /// directives (zeros elsewhere).
  std::vector<double> initial_node_voltages() const;
};

/// Parse a numeric literal with optional engineering suffix ("2.2k",
/// "0.5u", "10meg", "1e-12"). Returns an error naming the bad token.
util::Expected<double> parse_spice_number(const std::string& token);

/// Parse a whole deck. Errors carry the line number and offending text.
util::Expected<ParsedNetlist> parse_netlist(const std::string& text);

}  // namespace autockt::spice
