#pragma once
// SPICE-dialect netlist parser: lets users drive the simulator — and define
// whole sizing problems — from text decks instead of the C++ builder API
// (see examples/netlist_cli.cpp, examples/netlist_train.cpp and
// circuits/netlist_problem.hpp).
//
// Supported grammar (case-insensitive keywords, '*' comments, one element
// per line, engineering suffixes f p n u m k meg g t on all numbers):
//
//   .title <anything>
//   .card ptm45 | finfet16          default technology card for M devices
//   V<name> n+ n- dc <v> [ac <mag>] [step <v0> <v1> <t0> <trise>]
//   I<name> n+ n- dc <i> [ac <mag>] [step <i0> <i1> <t0> <trise>]
//   R<name> n1 n2 <ohms>
//   C<name> n1 n2 <farads>
//   G<name> out+ out- in+ in- <gm>  voltage-controlled current source
//   M<name> d g s b nmos|pmos w=<m> l=<m> [mult=<int>] [card=<name>]
//   B<name> bias sense <target_v>   ideal bias servo (nullor)
//   .nodeset <node> <volts>         initial DC guess for a node
//   .op                             request a DC operating point
//   .ac <probe_node> <f_start> <f_stop> [points_per_decade]
//   .tran <probe_node> <t_stop> <dt>
//   .noise <probe_node> <f_start> <f_stop>
//   .end
//
// Sizing dialect (turns a deck into a data-defined sizing scenario; see
// docs/DESIGN.md section 9):
//
//   .param <name> <lo> <hi> <steps> [log]
//       Declares a design variable swept over a `steps`-point grid from lo
//       to hi (linearly, or log-spaced with the `log` flag). Any numeric
//       value in an element line may reference it as {name}; an engineering
//       suffix may follow the closing brace, e.g. w={wp}u.
//   .spec <name> geq|leq|min <sample_lo> <sample_hi> <norm> [fail=<v>]
//       Declares a target specification: its sense, the target sampling
//       range used for training/deployment, the fixed normalization
//       reference, and optionally the value substituted when the
//       measurement cannot be produced.
//   .measure <spec_name> gain|f3db|ugbw|phase_margin|settling|noise
//   .measure <spec_name> supply_current <vsource_name>
//       Binds a spec to an extraction: gain/f3db/ugbw/phase_margin read the
//       first .ac sweep, settling the first .tran, noise the first .noise,
//       and supply_current the DC branch current magnitude of a named V
//       source. Every .spec needs exactly one .measure and vice versa.
//
// Node names are arbitrary identifiers; "0" and "gnd" are ground. Nodes are
// created on first use.

#include <cstddef>
#include <string>
#include <vector>

#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/noise.hpp"
#include "spice/transient.hpp"
#include "util/expected.hpp"

namespace autockt::spice {

struct AcRequest {
  std::string probe;
  AcOptions options;
};

struct TranRequest {
  std::string probe;
  TranOptions options;
};

struct NoiseRequest {
  std::string probe;
  NoiseOptions options;
};

/// A parsed deck instantiated at concrete design-variable values: the
/// circuit plus the analyses the deck requested.
struct ParsedNetlist {
  Circuit circuit;
  std::string title;
  bool want_op = false;
  std::vector<AcRequest> ac;
  std::vector<TranRequest> tran;
  std::vector<NoiseRequest> noise;
  /// .nodeset entries, resolved to node ids (see initial_node_voltages()).
  std::vector<std::pair<NodeId, double>> nodesets;

  /// Initial-guess vector for spice::DcOptions built from the .nodeset
  /// directives (zeros elsewhere).
  std::vector<double> initial_node_voltages() const;
};

/// A `.param` design-variable declaration.
struct DeckParam {
  std::string name;
  double lo = 0.0;
  double hi = 0.0;
  int steps = 1;
  bool log_scale = false;
  std::size_t line_no = 0;

  /// Physical value at grid index idx in [0, steps).
  double value_at(int idx) const;
  /// Grid-centre value — the default used when a deck is simulated outside
  /// a sizing problem (netlist_cli on a .param-carrying deck).
  double default_value() const { return value_at(steps / 2); }
};

/// A `.spec` target-specification declaration. Sense mirrors
/// circuits::SpecSense without depending on the circuits layer.
struct DeckSpec {
  std::string name;
  enum class Sense { GreaterEq, LessEq, Minimize } sense = Sense::GreaterEq;
  double sample_lo = 0.0;
  double sample_hi = 0.0;
  double norm = 1.0;
  double fail_value = 0.0;
  bool has_fail = false;  // explicit fail= given (else a sense default)
  std::size_t line_no = 0;
};

/// A `.measure` binding from a spec name to an extraction kind.
struct DeckMeasure {
  std::string spec;
  enum class Kind {
    Gain,
    F3db,
    Ugbw,
    PhaseMargin,
    Settling,
    Noise,
    SupplyCurrent
  } kind = Kind::Gain;
  std::string source;  // SupplyCurrent: the V-source device name
  std::size_t line_no = 0;
};

/// A parsed deck before instantiation: the element/analysis lines with
/// unresolved {param} references, plus the sizing declarations. One deck
/// instantiates into many circuits — one per design point — which is what
/// lets a text file define a whole sizing problem (see
/// circuits::make_netlist_problem).
struct NetlistDeck {
  std::string title;
  std::vector<DeckParam> params;
  std::vector<DeckSpec> specs;
  std::vector<DeckMeasure> measures;

  /// Raw tokenized line retained for instantiation; `no` is the 1-based
  /// line number in the original text and `cols` the 1-based column of each
  /// token, kept so instantiation errors name the offending position.
  struct RawLine {
    std::size_t no = 0;
    std::vector<std::string> tokens;
    std::vector<std::size_t> cols;
  };
  std::vector<RawLine> lines;

  /// Diagnostic ids named by `* lint-disable <id>...` comments, uppercased
  /// in source order (see analysis::apply_suppressions; error-severity
  /// diagnostics are never suppressible).
  std::vector<std::string> lint_disables;

  bool has_sizing() const { return !params.empty() || !specs.empty(); }
  /// Index of a param by name; -1 when absent.
  int param_index(const std::string& name) const;

  /// Build the circuit and analysis requests at the given design-variable
  /// values (aligned with `params`). Every {name} reference is substituted
  /// before element parsing; errors carry the original line number.
  util::Expected<ParsedNetlist> instantiate(
      const std::vector<double>& values) const;
  /// Instantiate at every param's grid-centre default.
  util::Expected<ParsedNetlist> instantiate_default() const;
};

/// Parse a numeric literal with optional engineering suffix ("2.2k",
/// "0.5u", "10meg", "1e-12"). Returns an error naming the bad token.
util::Expected<double> parse_spice_number(const std::string& token);

/// Parse a whole deck into its AST without instantiating. Errors carry the
/// line number and offending text. The default instantiation is validated
/// eagerly, so a malformed element line fails here, not at first use.
util::Expected<NetlistDeck> parse_deck(const std::string& text);

/// Syntax-only variant of parse_deck: tokenizes, collects declarations and
/// raw lines but skips the eager default instantiation, the sizing
/// cross-validation and the log-grid bound check. This is the entry point
/// for static analysis (analysis::lint_deck_text), which must be able to
/// inspect decks parse_deck would reject and report EVERY defect instead of
/// the first. Errors are limited to genuinely unreadable lines.
util::Expected<NetlistDeck> parse_deck_syntax(const std::string& text);

/// Compatibility wrapper: parse and instantiate at default param values.
util::Expected<ParsedNetlist> parse_netlist(const std::string& text);

}  // namespace autockt::spice
