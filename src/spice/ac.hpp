#pragma once
// Small-signal AC analysis: complex MNA sweep around a converged DC
// operating point. The stimulus is whatever sources carry a nonzero ac_mag.
//
// The sweep is restamp-free: devices stamp the frequency-independent G and
// the capacitance C exactly once per operating point; every frequency point
// forms Y = G + j*omega*C and runs a numeric-only refactorization on the
// sparse kernel (or a fresh dense LU on the reference kernel).

#include <complex>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/workspace.hpp"
#include "util/expected.hpp"

namespace autockt::spice {

struct AcPoint {
  double freq = 0.0;                     // Hz
  std::complex<double> value{0.0, 0.0};  // V(probe_p) - V(probe_m)
};

struct AcOptions {
  double f_start = 1e3;
  double f_stop = 1e11;
  int points_per_decade = 10;
  SimKernel kernel = SimKernel::Sparse;
  /// Reusable workspace (sparse kernel); temporary per call when null.
  SimWorkspace* workspace = nullptr;
};

/// Log-spaced sweep of the probe voltage. Fails if the AC matrix is singular
/// at any frequency (which indicates a malformed netlist).
util::Expected<std::vector<AcPoint>> ac_sweep(const Circuit& circuit,
                                              const OpPoint& op, NodeId probe_p,
                                              NodeId probe_m,
                                              const AcOptions& options = {});

/// Single-frequency full solution (all node voltages + branch currents).
util::Expected<std::vector<std::complex<double>>> ac_solve_at(
    const Circuit& circuit, const OpPoint& op, double freq,
    const AcOptions& options = {});

/// Batched sweep over K circuits sharing one topology (all compatible with
/// `ws`): each lane stamps G/C once, then every frequency point is one
/// batched refactorization + solve across all lanes. Per-lane results are
/// identical to ac_sweep() — a lane whose matrix goes singular gets that
/// lane's singular error while the other lanes complete. `options.kernel`
/// and `options.workspace` are ignored (the shared sparse `ws` is used).
std::vector<util::Expected<std::vector<AcPoint>>> ac_sweep_batch(
    const std::vector<const Circuit*>& circuits,
    const std::vector<const OpPoint*>& ops, NodeId probe_p, NodeId probe_m,
    const AcOptions& options, SimWorkspace& ws);

}  // namespace autockt::spice
