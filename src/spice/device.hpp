#pragma once
// Device abstraction for the MNA engine.
//
// Devices are immutable and stateless: every stamping call receives the full
// evaluation context (candidate node voltages, time). This makes circuit
// evaluation trivially thread-safe — multiple RL environments can evaluate
// copies of the same topology concurrently.
//
// Stamps write through MnaSink, which targets one of three backends:
//  * a dense matrix            — the legacy/reference kernel,
//  * a frozen sparse pattern   — pattern-resolved slot writes into a flat
//                                value array (the fast kernel; see
//                                spice/workspace.hpp),
//  * a PatternBuilder          — the discovery pass that freezes a circuit
//                                topology's structural pattern once.
// Devices whose footprint depends on the operating point (the MOSFET's
// drain/source swap) override declare_*_pattern() to declare the superset.
//
// AC stamping is split into a frequency-independent conductance part G and a
// capacitance part C; the engines form Y(omega) = G + j*omega*C per
// frequency without re-stamping any device.
//
// Conventions:
//  * Node 0 is ground and has no matrix row/column.
//  * Matrix index of node n (n > 0) is n - 1.
//  * Voltage sources append one branch-current unknown each, after the nodes.
//  * Nonlinear devices stamp their Newton companion model: for an injected
//    current J(v) leaving node d, they add the Jacobian dJ/dv to the matrix
//    and move J(v0) - (dJ/dv)·v0 to the right-hand side.

#include <cassert>
#include <complex>
#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace autockt::spice {

using NodeId = std::size_t;  // 0 == ground
inline constexpr NodeId kGround = 0;

/// Polymorphic (but branch-cheap, non-virtual) target for matrix stamps.
class MnaSink {
 public:
  MnaSink() = default;
  /// Dense reference backend (implicit: keeps `Stamp{matrix, b, v}` terse).
  MnaSink(linalg::RealMatrix& dense) : dense_(&dense) {}  // NOLINT(runtime/explicit)
  /// Pattern-resolved slot writes into `values` (aligned with `pattern`).
  MnaSink(const linalg::SparsePattern& pattern, double* values)
      : pattern_(&pattern), values_(values) {}
  /// Structural discovery: record positions, ignore values.
  explicit MnaSink(linalg::PatternBuilder& builder) : builder_(&builder) {}

  void add(std::size_t row, std::size_t col, double v) {
    if (values_ != nullptr) {
      const int s = pattern_->slot(row, col);
      assert(s >= 0 && "stamp outside the discovered pattern");
      if (s < 0) return;  // release builds: drop rather than corrupt memory
      values_[s] += v;
    } else if (dense_ != nullptr) {
      (*dense_)(row, col) += v;
    } else if (builder_ != nullptr) {
      builder_->add(row, col);
    }
  }

 private:
  linalg::RealMatrix* dense_ = nullptr;
  const linalg::SparsePattern* pattern_ = nullptr;
  double* values_ = nullptr;
  linalg::PatternBuilder* builder_ = nullptr;
};

/// Real-valued (DC / transient Newton iteration) stamping context.
struct RealStamp {
  MnaSink a;
  std::vector<double>& b;
  const std::vector<double>& voltages;  // candidate solution, indexed by node
  double time = 0.0;                    // transient time; 0 for DC
  bool transient = false;               // sources: use waveform(t) vs dc()
  double gmin = 0.0;                    // Newton homotopy conductance
  double source_scale = 1.0;            // source-stepping homotopy factor
  std::size_t num_nodes = 0;            // including ground

  std::size_t row_of_node(NodeId n) const { return n - 1; }
  std::size_t row_of_branch(std::size_t branch) const {
    return (num_nodes - 1) + branch;
  }

  /// Raw matrix entry (branch rows/columns of sources and probes).
  void add_a(std::size_t row, std::size_t col, double v) { a.add(row, col, v); }

  /// Conductance g between nodes n1 and n2.
  void conductance(NodeId n1, NodeId n2, double g) {
    if (n1 != kGround) a.add(row_of_node(n1), row_of_node(n1), g);
    if (n2 != kGround) a.add(row_of_node(n2), row_of_node(n2), g);
    if (n1 != kGround && n2 != kGround) {
      a.add(row_of_node(n1), row_of_node(n2), -g);
      a.add(row_of_node(n2), row_of_node(n1), -g);
    }
  }

  /// d(current leaving `at`)/d(voltage of `wrt`) += g.
  void jacobian(NodeId at, NodeId wrt, double g) {
    if (at != kGround && wrt != kGround)
      a.add(row_of_node(at), row_of_node(wrt), g);
  }

  /// Current `i` injected INTO node n (KCL right-hand side).
  void inject(NodeId n, double i) {
    if (n != kGround) b[row_of_node(n)] += i;
  }

  /// Right-hand-side entry of a branch row.
  void add_rhs(std::size_t row, double v) { b[row] += v; }
};

/// Small-signal (AC / noise) stamping context. Devices linearize around the
/// provided DC operating point and write the frequency-independent part into
/// `g` and capacitances into `c`; the engine forms G + j*omega*C per
/// frequency point, so one stamping pass serves a whole sweep.
struct ComplexStamp {
  MnaSink g;  // conductances, transconductances, source/probe branch rows
  MnaSink c;  // capacitances (scaled by j*omega at solve time)
  std::vector<std::complex<double>>& b;    // AC stimulus (freq-independent)
  const std::vector<double>& op_voltages;  // converged DC solution by node
  std::size_t num_nodes = 0;

  std::size_t row_of_node(NodeId n) const { return n - 1; }
  std::size_t row_of_branch(std::size_t branch) const {
    return (num_nodes - 1) + branch;
  }

  void add_g(std::size_t row, std::size_t col, double v) { g.add(row, col, v); }

  /// Conductance between two nodes (the real part of a branch admittance).
  void conductance(NodeId n1, NodeId n2, double gv) {
    two_node(g, n1, n2, gv);
  }

  /// Capacitance between two nodes (stamped as admittance j*omega*c).
  void capacitance(NodeId n1, NodeId n2, double cv) {
    two_node(c, n1, n2, cv);
  }

  /// d(current leaving `at`)/d(v of `wrt`) += gv, at the operating point.
  void transconductance(NodeId at, NodeId wrt, double gv) {
    if (at != kGround && wrt != kGround)
      g.add(row_of_node(at), row_of_node(wrt), gv);
  }

  void inject(NodeId n, std::complex<double> i) {
    if (n != kGround) b[row_of_node(n)] += i;
  }

  void add_rhs(std::size_t row, std::complex<double> v) { b[row] += v; }

 private:
  void two_node(MnaSink& sink, NodeId n1, NodeId n2, double v) {
    if (n1 != kGround) sink.add(row_of_node(n1), row_of_node(n1), v);
    if (n2 != kGround) sink.add(row_of_node(n2), row_of_node(n2), v);
    if (n1 != kGround && n2 != kGround) {
      sink.add(row_of_node(n1), row_of_node(n2), -v);
      sink.add(row_of_node(n2), row_of_node(n1), -v);
    }
  }
};

/// A linear capacitance contributed by a device; the transient engine owns
/// the companion-model state for each element.
struct CapElement {
  NodeId n1 = kGround;
  NodeId n2 = kGround;
  double capacitance = 0.0;
};

/// One small-signal noise current source (between two nodes) with its power
/// spectral density at the query frequency.
struct NoiseSource {
  NodeId n1 = kGround;   // current flows n1 -> n2
  NodeId n2 = kGround;
  double psd = 0.0;      // A^2/Hz at the queried frequency
  std::string origin;    // device name, for reporting
};

/// Structural self-description used by the static analyzers
/// (analysis/circuit_lint.hpp): what kind of element this is, every node it
/// touches, and which node pairs it connects with a DC-conductive path
/// (a path that lets the DC solution determine relative node voltages —
/// resistor bodies, voltage sources, MOSFET channels, bias-servo ports;
/// NOT capacitors, current sources or VCCS ports).
struct DeviceTopology {
  enum class Kind {
    Resistor,
    Capacitor,
    VoltageSource,
    CurrentSource,
    Vccs,
    BiasProbe,
    Mosfet,
    Other
  };
  Kind kind = Kind::Other;
  std::vector<NodeId> nodes;                         // all terminals
  std::vector<std::pair<NodeId, NodeId>> dc_paths;   // conductive pairs
};

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = default;
  Device& operator=(const Device&) = default;

  const std::string& name() const { return name_; }

  /// Number of branch-current unknowns this device introduces (voltage
  /// sources: 1). `first_branch` is assigned by the circuit at registration.
  virtual std::size_t branch_count() const { return 0; }
  void set_first_branch(std::size_t b) { first_branch_ = b; }
  std::size_t first_branch() const { return first_branch_; }

  /// Stamp the resistive/Newton-linearized part. Capacitances are NOT
  /// stamped here; the transient engine adds companion stamps for the
  /// elements reported by collect_caps().
  virtual void stamp_real(RealStamp& ctx) const = 0;

  /// Stamp the small-signal model split into G and C parts (see
  /// ComplexStamp).
  virtual void stamp_complex(ComplexStamp& ctx) const = 0;

  /// Declare the superset of matrix positions stamp_real() may ever touch,
  /// stamping into a pattern-discovery context. The default single stamp is
  /// exact for devices whose footprint is voltage-independent; the MOSFET
  /// overrides it to cover both drain/source orientations.
  virtual void declare_real_pattern(RealStamp& ctx) const { stamp_real(ctx); }

  /// Same superset declaration for the small-signal G/C stamps.
  virtual void declare_complex_pattern(ComplexStamp& ctx) const {
    stamp_complex(ctx);
  }

  /// Report linear capacitances for transient companion integration.
  virtual void collect_caps(std::vector<CapElement>& /*out*/) const {}

  /// Report noise current sources at frequency `freq`, given the operating
  /// point; used by the adjoint noise analysis.
  virtual void collect_noise(const std::vector<double>& /*op_voltages*/,
                             double /*freq*/, double /*temp_k*/,
                             std::vector<NoiseSource>& /*out*/) const {}

  /// Structural description for the static analyzers. The default (no
  /// nodes, Kind::Other) makes unknown devices invisible to the topology
  /// checks — conservative: they can never cause a false positive.
  virtual DeviceTopology topology() const { return {}; }

 private:
  std::string name_;
  std::size_t first_branch_ = 0;
};

}  // namespace autockt::spice
