#pragma once
// Device abstraction for the MNA engine.
//
// Devices are immutable and stateless: every stamping call receives the full
// evaluation context (candidate node voltages, time, frequency). This makes
// circuit evaluation trivially thread-safe — multiple RL environments can
// evaluate copies of the same topology concurrently.
//
// Conventions:
//  * Node 0 is ground and has no matrix row/column.
//  * Matrix index of node n (n > 0) is n - 1.
//  * Voltage sources append one branch-current unknown each, after the nodes.
//  * Nonlinear devices stamp their Newton companion model: for an injected
//    current J(v) leaving node d, they add the Jacobian dJ/dv to the matrix
//    and move J(v0) - (dJ/dv)·v0 to the right-hand side.

#include <complex>
#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace autockt::spice {

using NodeId = std::size_t;  // 0 == ground
inline constexpr NodeId kGround = 0;

/// Real-valued (DC / transient Newton iteration) stamping context.
struct RealStamp {
  linalg::RealMatrix& a;
  std::vector<double>& b;
  const std::vector<double>& voltages;  // candidate solution, indexed by node
  double time = 0.0;                    // transient time; 0 for DC
  bool transient = false;               // sources: use waveform(t) vs dc()
  double gmin = 0.0;                    // Newton homotopy conductance
  double source_scale = 1.0;            // source-stepping homotopy factor
  std::size_t num_nodes = 0;            // including ground

  std::size_t row_of_node(NodeId n) const { return n - 1; }
  std::size_t row_of_branch(std::size_t branch) const {
    return (num_nodes - 1) + branch;
  }

  /// Conductance g between nodes a_node and b_node.
  void conductance(NodeId n1, NodeId n2, double g) {
    if (n1 != kGround) a(row_of_node(n1), row_of_node(n1)) += g;
    if (n2 != kGround) a(row_of_node(n2), row_of_node(n2)) += g;
    if (n1 != kGround && n2 != kGround) {
      a(row_of_node(n1), row_of_node(n2)) -= g;
      a(row_of_node(n2), row_of_node(n1)) -= g;
    }
  }

  /// d(current leaving `at`)/d(voltage of `wrt`) += g.
  void jacobian(NodeId at, NodeId wrt, double g) {
    if (at != kGround && wrt != kGround)
      a(row_of_node(at), row_of_node(wrt)) += g;
  }

  /// Current `i` injected INTO node n (KCL right-hand side).
  void inject(NodeId n, double i) {
    if (n != kGround) b[row_of_node(n)] += i;
  }
};

/// Complex-valued (AC / noise) stamping context. Devices linearize around the
/// provided DC operating point.
struct ComplexStamp {
  linalg::ComplexMatrix& a;
  std::vector<std::complex<double>>& b;
  const std::vector<double>& op_voltages;  // converged DC solution by node
  double omega = 0.0;                      // rad/s
  std::size_t num_nodes = 0;

  std::size_t row_of_node(NodeId n) const { return n - 1; }
  std::size_t row_of_branch(std::size_t branch) const {
    return (num_nodes - 1) + branch;
  }

  void admittance(NodeId n1, NodeId n2, std::complex<double> y) {
    if (n1 != kGround) a(row_of_node(n1), row_of_node(n1)) += y;
    if (n2 != kGround) a(row_of_node(n2), row_of_node(n2)) += y;
    if (n1 != kGround && n2 != kGround) {
      a(row_of_node(n1), row_of_node(n2)) -= y;
      a(row_of_node(n2), row_of_node(n1)) -= y;
    }
  }

  void transadmittance(NodeId at, NodeId wrt, std::complex<double> y) {
    if (at != kGround && wrt != kGround)
      a(row_of_node(at), row_of_node(wrt)) += y;
  }

  void inject(NodeId n, std::complex<double> i) {
    if (n != kGround) b[row_of_node(n)] += i;
  }
};

/// A linear capacitance contributed by a device; the transient engine owns
/// the companion-model state for each element.
struct CapElement {
  NodeId n1 = kGround;
  NodeId n2 = kGround;
  double capacitance = 0.0;
};

/// One small-signal noise current source (between two nodes) with its power
/// spectral density at the query frequency.
struct NoiseSource {
  NodeId n1 = kGround;   // current flows n1 -> n2
  NodeId n2 = kGround;
  double psd = 0.0;      // A^2/Hz at the queried frequency
  std::string origin;    // device name, for reporting
};

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = default;
  Device& operator=(const Device&) = default;

  const std::string& name() const { return name_; }

  /// Number of branch-current unknowns this device introduces (voltage
  /// sources: 1). `first_branch` is assigned by the circuit at registration.
  virtual std::size_t branch_count() const { return 0; }
  void set_first_branch(std::size_t b) { first_branch_ = b; }
  std::size_t first_branch() const { return first_branch_; }

  /// Stamp the resistive/Newton-linearized part. Capacitances are NOT
  /// stamped here; the transient engine adds companion stamps for the
  /// elements reported by collect_caps().
  virtual void stamp_real(RealStamp& ctx) const = 0;

  /// Stamp the small-signal model at ctx.omega (including capacitances).
  virtual void stamp_complex(ComplexStamp& ctx) const = 0;

  /// Report linear capacitances for transient companion integration.
  virtual void collect_caps(std::vector<CapElement>& /*out*/) const {}

  /// Report noise current sources at frequency `freq`, given the operating
  /// point; used by the adjoint noise analysis.
  virtual void collect_noise(const std::vector<double>& /*op_voltages*/,
                             double /*freq*/, double /*temp_k*/,
                             std::vector<NoiseSource>& /*out*/) const {}

 private:
  std::string name_;
  std::size_t first_branch_ = 0;
};

}  // namespace autockt::spice
