#include "spice/mosfet.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "spice/units.hpp"

namespace autockt::spice {

namespace {

/// Numerically safe softplus: ln(1 + e^x).
double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

TechCard TechCard::ptm45() {
  TechCard c;
  c.name = "ptm45";
  c.vdd = 1.2;
  c.temp_k = 300.0;
  c.u_cox_n = 3.2e-4;
  c.u_cox_p = 1.4e-4;
  c.vth_n = 0.35;
  c.vth_p = 0.35;
  c.lambda_n = 0.90;
  c.lambda_p = 1.10;
  c.l_min = 45e-9;
  c.cox_area = 1.0e-2;
  c.cov_w = 3.0e-10;
  c.cj_w = 5.0e-10;
  c.subthreshold_n = 1.5;
  c.gamma_noise = 1.0;
  c.kf = 1.0e-26;
  c.quantized_width = false;
  return c;
}

TechCard TechCard::finfet16() {
  TechCard c;
  c.name = "finfet16";
  c.vdd = 0.8;
  c.temp_k = 300.0;
  c.u_cox_n = 6.0e-4;
  c.u_cox_p = 4.5e-4;
  c.vth_n = 0.30;
  c.vth_p = 0.30;
  c.lambda_n = 0.90;   // short-channel: low intrinsic gain, soft saturation
  c.lambda_p = 1.00;
  c.l_min = 16e-9;
  c.cox_area = 2.0e-2;
  c.cov_w = 4.0e-10;
  c.cj_w = 6.0e-10;
  c.subthreshold_n = 1.35;
  c.gamma_noise = 1.2;
  c.kf = 2.0e-26;
  c.quantized_width = true;
  c.fin_width = 1.0e-7;  // effective electrical width per fin (2*hfin + tfin)
  return c;
}

Mosfet::Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
               MosType type, MosGeom geom, const TechCard& card)
    : Device(std::move(name)),
      d_(d),
      g_(g),
      s_(s),
      b_(b),
      type_(type),
      geom_(geom) {
  const bool nmos = type_ == MosType::Nmos;
  u_cox_ = nmos ? card.u_cox_n : card.u_cox_p;
  vth_ = nmos ? card.vth_n : card.vth_p;
  const double lambda0 = nmos ? card.lambda_n : card.lambda_p;
  // Channel-length modulation weakens with longer channels.
  lambda_eff_ = lambda0 * card.l_min / std::max(geom_.length, card.l_min);
  nvt_ = card.subthreshold_n * thermal_voltage(card.temp_k);
  gamma_noise_ = card.gamma_noise;
  kf_ = card.kf;
  cox_area_ = card.cox_area;
  temp_k_ = card.temp_k;

  const double w_total = geom_.total_width();
  cgs_ = (2.0 / 3.0) * card.cox_area * w_total * geom_.length +
         card.cov_w * w_total;
  cgd_ = card.cov_w * w_total;
  cdb_ = card.cj_w * w_total;
  csb_ = card.cj_w * w_total;
}

Mosfet::Eval Mosfet::evaluate(const std::vector<double>& voltages) const {
  const double sign = type_ == MosType::Nmos ? 1.0 : -1.0;

  Eval e;
  // Drain/source swap keeps the polarity-corrected Vds non-negative; the
  // square-law channel is symmetric so this is exact, and it guarantees the
  // model (and its derivatives) stay continuous when nodes cross.
  const double vds_raw = sign * (voltages[d_] - voltages[s_]);
  if (vds_raw >= 0.0) {
    e.d_eff = d_;
    e.s_eff = s_;
  } else {
    e.d_eff = s_;
    e.s_eff = d_;
  }
  const double vds = sign * (voltages[e.d_eff] - voltages[e.s_eff]);
  const double vgs = sign * (voltages[g_] - voltages[e.s_eff]);

  const double vov = vgs - vth_;
  const double vov_eff = std::max(nvt_ * softplus(vov / nvt_), 1e-12);
  const double dvov_eff = sigmoid(vov / nvt_);

  const double u = vds / vov_eff;
  const double t = std::tanh(u);
  const double vds_eff = vov_eff * t;
  const double sech2 = 1.0 - t * t;
  const double dvdse_dvds = sech2;              // d(Vds_eff)/d(Vds)
  const double dvdse_dvsat = t - u * sech2;     // d(Vds_eff)/d(Vov_eff)

  const double beta = u_cox_ * geom_.total_width() / geom_.length;
  const double f = vov_eff * vds_eff - 0.5 * vds_eff * vds_eff;
  const double clm = 1.0 + lambda_eff_ * vds;

  const double id = beta * f * clm;  // magnitude (>= 0)

  const double df_dvov = vds_eff + (vov_eff - vds_eff) * dvdse_dvsat;
  const double df_dvds = (vov_eff - vds_eff) * dvdse_dvds;

  const double gm = beta * clm * df_dvov * dvov_eff;
  const double gds = beta * (clm * df_dvds + lambda_eff_ * f);

  // Injected current at d_eff is J = sign * id; the sign cancels in the
  // derivatives w.r.t. actual node voltages (chain rule through sign^2).
  e.j = sign * id;
  e.gm = std::max(gm, 0.0);
  e.gds = std::max(gds, 1e-15);
  e.id_mag = id;
  e.vov_eff = vov_eff;
  e.vds = vds;
  e.vgs = vgs;
  return e;
}

void Mosfet::stamp_real(RealStamp& ctx) const {
  const Eval e = evaluate(ctx.voltages);

  // Newton companion: current leaving e.d_eff is
  //   J(v) ~= J0 + gds*(vd - vd0) + gm*(vg - vg0) - (gm+gds)*(vs - vs0)
  ctx.jacobian(e.d_eff, e.d_eff, e.gds);
  ctx.jacobian(e.d_eff, g_, e.gm);
  ctx.jacobian(e.d_eff, e.s_eff, -(e.gm + e.gds));
  ctx.jacobian(e.s_eff, e.d_eff, -e.gds);
  ctx.jacobian(e.s_eff, g_, -e.gm);
  ctx.jacobian(e.s_eff, e.s_eff, e.gm + e.gds);

  const double ieq = e.j - e.gds * ctx.voltages[e.d_eff] -
                     e.gm * ctx.voltages[g_] +
                     (e.gm + e.gds) * ctx.voltages[e.s_eff];
  ctx.inject(e.d_eff, -ieq);
  ctx.inject(e.s_eff, ieq);
}

void Mosfet::stamp_complex(ComplexStamp& ctx) const {
  const Eval e = evaluate(ctx.op_voltages);

  ctx.transconductance(e.d_eff, e.d_eff, e.gds);
  ctx.transconductance(e.d_eff, g_, e.gm);
  ctx.transconductance(e.d_eff, e.s_eff, -(e.gm + e.gds));
  ctx.transconductance(e.s_eff, e.d_eff, -e.gds);
  ctx.transconductance(e.s_eff, g_, -e.gm);
  ctx.transconductance(e.s_eff, e.s_eff, e.gm + e.gds);

  // Geometry capacitances (physical, unswapped terminals).
  ctx.capacitance(g_, s_, cgs_);
  ctx.capacitance(g_, d_, cgd_);
  ctx.capacitance(d_, b_, cdb_);
  ctx.capacitance(s_, b_, csb_);
}

void Mosfet::declare_real_pattern(RealStamp& ctx) const {
  // The drain/source swap means the Jacobian footprint depends on the
  // candidate voltages; declare both orientations so the frozen pattern
  // covers every iterate. (The two orientations touch the same position
  // set whenever both terminals are off ground, but ground connections
  // drop different entries per orientation.)
  for (const auto& [de, se] : {std::pair{d_, s_}, std::pair{s_, d_}}) {
    ctx.jacobian(de, de, 0.0);
    ctx.jacobian(de, g_, 0.0);
    ctx.jacobian(de, se, 0.0);
    ctx.jacobian(se, de, 0.0);
    ctx.jacobian(se, g_, 0.0);
    ctx.jacobian(se, se, 0.0);
  }
}

void Mosfet::declare_complex_pattern(ComplexStamp& ctx) const {
  for (const auto& [de, se] : {std::pair{d_, s_}, std::pair{s_, d_}}) {
    ctx.transconductance(de, de, 0.0);
    ctx.transconductance(de, g_, 0.0);
    ctx.transconductance(de, se, 0.0);
    ctx.transconductance(se, de, 0.0);
    ctx.transconductance(se, g_, 0.0);
    ctx.transconductance(se, se, 0.0);
  }
  ctx.capacitance(g_, s_, 0.0);
  ctx.capacitance(g_, d_, 0.0);
  ctx.capacitance(d_, b_, 0.0);
  ctx.capacitance(s_, b_, 0.0);
}

void Mosfet::collect_caps(std::vector<CapElement>& out) const {
  out.push_back({g_, s_, cgs_});
  out.push_back({g_, d_, cgd_});
  out.push_back({d_, b_, cdb_});
  out.push_back({s_, b_, csb_});
}

void Mosfet::collect_noise(const std::vector<double>& op_voltages, double freq,
                           double temp_k,
                           std::vector<NoiseSource>& out) const {
  const Eval e = evaluate(op_voltages);
  const double thermal = 4.0 * kBoltzmann * temp_k * gamma_noise_ * e.gm;
  const double area = geom_.total_width() * geom_.length;
  const double flicker =
      kf_ * e.id_mag / (cox_area_ * area * std::max(freq, 1.0));
  out.push_back({e.d_eff, e.s_eff, thermal + flicker, name()});
}

MosSmallSignal Mosfet::linearize(const std::vector<double>& voltages) const {
  const Eval e = evaluate(voltages);
  MosSmallSignal ss;
  ss.id = e.j;
  ss.gm = e.gm;
  ss.gds = e.gds;
  ss.vov_eff = e.vov_eff;
  if (e.vgs - vth_ < 0.0) {
    ss.region = MosRegion::Subthreshold;
  } else if (e.vds < e.vov_eff) {
    ss.region = MosRegion::Triode;
  } else {
    ss.region = MosRegion::Saturation;
  }
  return ss;
}

}  // namespace autockt::spice
