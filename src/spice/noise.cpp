#include "spice/noise.hpp"

#include <cmath>
#include <complex>

#include "linalg/lu.hpp"
#include "spice/units.hpp"

namespace autockt::spice {

double NoiseResult::total_output_vrms() const {
  return std::sqrt(std::max(total_output_v2, 0.0));
}

util::Expected<NoiseResult> noise_sweep(const Circuit& circuit,
                                        const OpPoint& op, NodeId probe_p,
                                        NodeId probe_m,
                                        const NoiseOptions& options) {
  const std::size_t n = circuit.num_unknowns();
  const double decades = std::log10(options.f_stop / options.f_start);
  const int total = std::max(
      2, static_cast<int>(std::ceil(decades * options.points_per_decade)) + 1);

  NoiseResult result;
  result.freq.reserve(static_cast<std::size_t>(total));
  result.out_psd.reserve(static_cast<std::size_t>(total));

  const double temp_k = 300.0;

  linalg::ComplexMatrix a(n, n);
  for (int i = 0; i < total; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(total - 1);
    const double freq = options.f_start * std::pow(10.0, frac * decades);

    a.fill({0.0, 0.0});
    std::vector<std::complex<double>> dummy_b(n, {0.0, 0.0});
    ComplexStamp ctx{a, dummy_b, op.node_v};
    ctx.omega = 2.0 * kPi * freq;
    ctx.num_nodes = circuit.num_nodes();
    circuit.stamp_complex(ctx);

    linalg::LuFactorization<std::complex<double>> lu(a);
    if (!lu.ok()) {
      return util::Error{"noise matrix singular at f=" + std::to_string(freq),
                         4};
    }

    // Adjoint: x_a = Y^-T c with c selecting the probe voltage.
    std::vector<std::complex<double>> c(n, {0.0, 0.0});
    if (probe_p != kGround) c[probe_p - 1] += 1.0;
    if (probe_m != kGround) c[probe_m - 1] -= 1.0;
    const std::vector<std::complex<double>> xa = lu.solve_transposed(c);

    double psd = 0.0;
    for (const NoiseSource& src :
         circuit.collect_noise(op.node_v, freq, temp_k)) {
      std::complex<double> h{0.0, 0.0};
      if (src.n1 != kGround) h -= xa[src.n1 - 1];
      if (src.n2 != kGround) h += xa[src.n2 - 1];
      psd += std::norm(h) * src.psd;
    }
    result.freq.push_back(freq);
    result.out_psd.push_back(psd);
  }

  // Trapezoidal integration in linear frequency over the log-spaced grid.
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < result.freq.size(); ++i) {
    acc += 0.5 * (result.out_psd[i] + result.out_psd[i + 1]) *
           (result.freq[i + 1] - result.freq[i]);
  }
  result.total_output_v2 = acc;
  return result;
}

}  // namespace autockt::spice
