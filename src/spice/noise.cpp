#include "spice/noise.hpp"

#include <cmath>
#include <complex>
#include <optional>
#include <string>

#include "spice/complex_solver.hpp"
#include "spice/units.hpp"

namespace autockt::spice {

double NoiseResult::total_output_vrms() const {
  return std::sqrt(std::max(total_output_v2, 0.0));
}

util::Expected<NoiseResult> noise_sweep(const Circuit& circuit,
                                        const OpPoint& op, NodeId probe_p,
                                        NodeId probe_m,
                                        const NoiseOptions& options) {
  const std::size_t n = circuit.num_unknowns();
  const int total = detail::sweep_points(options.f_start, options.f_stop,
                                         options.points_per_decade);

  NoiseResult result;
  result.freq.reserve(static_cast<std::size_t>(total));
  result.out_psd.reserve(static_cast<std::size_t>(total));

  const double temp_k = 300.0;

  // Adjoint stimulus selecting the probe voltage (frequency-independent).
  std::vector<std::complex<double>> c(n, {0.0, 0.0});
  if (probe_p != kGround) c[probe_p - 1] += 1.0;
  if (probe_m != kGround) c[probe_m - 1] -= 1.0;

  const bool dense = options.kernel == SimKernel::Dense;
  std::optional<detail::DenseAcAssembly> dense_assembly;
  std::optional<SimWorkspace> scratch;
  SimWorkspace* ws = options.workspace;
  if (dense) {
    dense_assembly.emplace(circuit, op.node_v);
  } else {
    if (ws != nullptr &&
        (!ws->compatible(circuit) || !ws->has_complex())) {
      return util::Error{"noise sweep: workspace does not match the circuit",
                         4};
    }
    if (ws == nullptr) {
      scratch.emplace(circuit, SimWorkspace::Sides::Complex);
      ws = &*scratch;
    }
    // One stamping pass; every frequency is a numeric-only refactorization.
    ComplexStamp ctx = ws->begin_complex(op.node_v);
    circuit.stamp_complex(ctx);
  }

  std::vector<NoiseSource> sources;
  std::vector<std::complex<double>> xa_dense;
  for (int i = 0; i < total; ++i) {
    const double freq =
        detail::sweep_freq(options.f_start, options.f_stop, i, total);
    const double omega = 2.0 * kPi * freq;

    const std::vector<std::complex<double>>* xa = nullptr;
    bool ok = false;
    if (dense) {
      ok = dense_assembly->factor(omega);
      if (ok) {
        xa_dense = dense_assembly->lu->solve_transposed(c);
        xa = &xa_dense;
      }
    } else {
      ok = ws->factor_complex(omega);
      if (ok) xa = &ws->solve_complex_transposed(c);
    }
    if (!ok) {
      return util::Error{"noise matrix singular at f=" + std::to_string(freq),
                         4};
    }

    // Adjoint: x_a = Y^-T c; |h|^2-weighted PSD sum over all sources.
    double psd = 0.0;
    circuit.collect_noise(op.node_v, freq, temp_k, sources);
    for (const NoiseSource& src : sources) {
      std::complex<double> h{0.0, 0.0};
      if (src.n1 != kGround) h -= (*xa)[src.n1 - 1];
      if (src.n2 != kGround) h += (*xa)[src.n2 - 1];
      psd += std::norm(h) * src.psd;
    }
    result.freq.push_back(freq);
    result.out_psd.push_back(psd);
  }

  // Trapezoidal integration in linear frequency over the log-spaced grid.
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < result.freq.size(); ++i) {
    acc += 0.5 * (result.out_psd[i] + result.out_psd[i + 1]) *
           (result.freq[i + 1] - result.freq[i]);
  }
  result.total_output_v2 = acc;
  return result;
}

std::vector<util::Expected<NoiseResult>> noise_sweep_batch(
    const std::vector<const Circuit*>& circuits,
    const std::vector<const OpPoint*>& ops, NodeId probe_p, NodeId probe_m,
    const NoiseOptions& options, SimWorkspace& ws) {
  const std::size_t K = circuits.size();
  std::vector<util::Expected<NoiseResult>> results(K, NoiseResult{});
  if (K == 0) return results;
  const std::size_t n = ws.num_unknowns();
  const int total = detail::sweep_points(options.f_start, options.f_stop,
                                         options.points_per_decade);
  const double temp_k = 300.0;

  // Adjoint stimulus selecting the probe voltage — identical for every lane
  // (shared topology means shared node ids), so one broadcast transposed
  // solve serves the whole batch.
  std::vector<std::complex<double>> c(n, {0.0, 0.0});
  if (probe_p != kGround) c[probe_p - 1] += 1.0;
  if (probe_m != kGround) c[probe_m - 1] -= 1.0;

  ws.ensure_complex_batch(K);
  std::vector<char> live(K, 1);
  std::vector<NoiseResult> lane_results(K);
  for (std::size_t l = 0; l < K; ++l) {
    if (!ws.compatible(*circuits[l]) || !ws.has_complex()) {
      results[l] = util::Error{
          "noise sweep: workspace does not match the circuit", 4};
      live[l] = 0;
      continue;
    }
    ComplexStamp ctx = ws.begin_complex(ops[l]->node_v);
    circuits[l]->stamp_complex(ctx);
    ws.commit_complex_batch_lane(l);
    lane_results[l].freq.reserve(static_cast<std::size_t>(total));
    lane_results[l].out_psd.reserve(static_cast<std::size_t>(total));
  }

  std::vector<NoiseSource> sources;
  std::vector<std::complex<double>> xa;
  for (int i = 0; i < total; ++i) {
    const double freq =
        detail::sweep_freq(options.f_start, options.f_stop, i, total);
    const double omega = 2.0 * kPi * freq;
    ws.factor_complex_batch(omega);
    ws.solve_complex_transposed_batch(c);
    for (std::size_t l = 0; l < K; ++l) {
      if (live[l] == 0) continue;
      if (!ws.complex_lane_solvable(l)) {
        results[l] = util::Error{
            "noise matrix singular at f=" + std::to_string(freq), 4};
        live[l] = 0;
        continue;
      }
      ws.complex_lane_solution(l, xa);
      double psd = 0.0;
      circuits[l]->collect_noise(ops[l]->node_v, freq, temp_k, sources);
      for (const NoiseSource& src : sources) {
        std::complex<double> h{0.0, 0.0};
        if (src.n1 != kGround) h -= xa[src.n1 - 1];
        if (src.n2 != kGround) h += xa[src.n2 - 1];
        psd += std::norm(h) * src.psd;
      }
      lane_results[l].freq.push_back(freq);
      lane_results[l].out_psd.push_back(psd);
    }
  }

  for (std::size_t l = 0; l < K; ++l) {
    if (live[l] == 0) continue;
    NoiseResult& r = lane_results[l];
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < r.freq.size(); ++i) {
      acc += 0.5 * (r.out_psd[i] + r.out_psd[i + 1]) *
             (r.freq[i + 1] - r.freq[i]);
    }
    r.total_output_v2 = acc;
    results[l] = std::move(r);
  }
  return results;
}

}  // namespace autockt::spice
