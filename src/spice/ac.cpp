#include "spice/ac.hpp"

#include <cmath>

#include "linalg/lu.hpp"
#include "spice/units.hpp"

namespace autockt::spice {

namespace {

util::Expected<std::vector<std::complex<double>>> solve_complex(
    const Circuit& circuit, const OpPoint& op, double freq) {
  const std::size_t n = circuit.num_unknowns();
  linalg::ComplexMatrix a(n, n);
  std::vector<std::complex<double>> b(n, {0.0, 0.0});
  ComplexStamp ctx{a, b, op.node_v};
  ctx.omega = 2.0 * kPi * freq;
  ctx.num_nodes = circuit.num_nodes();
  circuit.stamp_complex(ctx);

  linalg::LuFactorization<std::complex<double>> lu(a);
  if (!lu.ok()) {
    return util::Error{"AC matrix singular at f=" + std::to_string(freq), 2};
  }
  return lu.solve(b);
}

}  // namespace

util::Expected<std::vector<AcPoint>> ac_sweep(const Circuit& circuit,
                                              const OpPoint& op, NodeId probe_p,
                                              NodeId probe_m,
                                              const AcOptions& options) {
  const double decades = std::log10(options.f_stop / options.f_start);
  const int total =
      std::max(2, static_cast<int>(
                      std::ceil(decades * options.points_per_decade)) +
                      1);

  std::vector<AcPoint> sweep;
  sweep.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(total - 1);
    const double freq = options.f_start * std::pow(10.0, frac * decades);
    auto x = solve_complex(circuit, op, freq);
    if (!x.ok()) return x.error();

    std::complex<double> v{0.0, 0.0};
    if (probe_p != kGround) v += (*x)[probe_p - 1];
    if (probe_m != kGround) v -= (*x)[probe_m - 1];
    sweep.push_back({freq, v});
  }
  return sweep;
}

util::Expected<std::vector<std::complex<double>>> ac_solve_at(
    const Circuit& circuit, const OpPoint& op, double freq) {
  return solve_complex(circuit, op, freq);
}

}  // namespace autockt::spice
