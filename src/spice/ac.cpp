#include "spice/ac.hpp"

#include <cmath>
#include <optional>
#include <string>

#include "spice/complex_solver.hpp"
#include "spice/units.hpp"

namespace autockt::spice {

namespace {

using detail::sweep_freq;
using detail::sweep_points;

std::complex<double> probe_of(const std::vector<std::complex<double>>& x,
                              NodeId probe_p, NodeId probe_m) {
  std::complex<double> v{0.0, 0.0};
  if (probe_p != kGround) v += x[probe_p - 1];
  if (probe_m != kGround) v -= x[probe_m - 1];
  return v;
}

util::Error singular_error(double freq) {
  return util::Error{"AC matrix singular at f=" + std::to_string(freq), 2};
}

}  // namespace

util::Expected<std::vector<AcPoint>> ac_sweep(const Circuit& circuit,
                                              const OpPoint& op, NodeId probe_p,
                                              NodeId probe_m,
                                              const AcOptions& options) {
  const int total =
      sweep_points(options.f_start, options.f_stop, options.points_per_decade);
  std::vector<AcPoint> sweep;
  sweep.reserve(static_cast<std::size_t>(total));

  if (options.kernel == SimKernel::Dense) {
    detail::DenseAcAssembly assembly(circuit, op.node_v);
    for (int i = 0; i < total; ++i) {
      const double freq =
          sweep_freq(options.f_start, options.f_stop, i, total);
      if (!assembly.factor(2.0 * kPi * freq)) return singular_error(freq);
      sweep.push_back({freq, probe_of(assembly.lu->solve(assembly.b),
                                      probe_p, probe_m)});
    }
    return sweep;
  }

  std::optional<SimWorkspace> scratch;
  SimWorkspace* ws = options.workspace;
  if (ws != nullptr &&
      (!ws->compatible(circuit) || !ws->has_complex())) {
    return util::Error{"AC sweep: workspace does not match the circuit", 2};
  }
  if (ws == nullptr) {
    scratch.emplace(circuit, SimWorkspace::Sides::Complex);
    ws = &*scratch;
  }
  // One stamping pass serves the whole sweep; each frequency point is a
  // numeric-only refactorization of G + j*omega*C.
  ComplexStamp ctx = ws->begin_complex(op.node_v);
  circuit.stamp_complex(ctx);
  for (int i = 0; i < total; ++i) {
    const double freq = sweep_freq(options.f_start, options.f_stop, i, total);
    if (!ws->factor_complex(2.0 * kPi * freq)) return singular_error(freq);
    sweep.push_back({freq, probe_of(ws->solve_complex(), probe_p, probe_m)});
  }
  return sweep;
}

std::vector<util::Expected<std::vector<AcPoint>>> ac_sweep_batch(
    const std::vector<const Circuit*>& circuits,
    const std::vector<const OpPoint*>& ops, NodeId probe_p, NodeId probe_m,
    const AcOptions& options, SimWorkspace& ws) {
  const std::size_t K = circuits.size();
  std::vector<util::Expected<std::vector<AcPoint>>> results(
      K, std::vector<AcPoint>{});
  if (K == 0) return results;
  const int total =
      sweep_points(options.f_start, options.f_stop, options.points_per_decade);

  ws.ensure_complex_batch(K);
  std::vector<char> live(K, 1);
  std::vector<std::vector<AcPoint>> sweeps(K);
  for (std::size_t l = 0; l < K; ++l) {
    if (!ws.compatible(*circuits[l]) || !ws.has_complex()) {
      results[l] =
          util::Error{"AC sweep: workspace does not match the circuit", 2};
      live[l] = 0;
      continue;
    }
    ComplexStamp ctx = ws.begin_complex(ops[l]->node_v);
    circuits[l]->stamp_complex(ctx);
    ws.commit_complex_batch_lane(l);
    sweeps[l].reserve(static_cast<std::size_t>(total));
  }

  std::vector<std::complex<double>> x_lane;
  for (int i = 0; i < total; ++i) {
    const double freq = sweep_freq(options.f_start, options.f_stop, i, total);
    ws.factor_complex_batch(2.0 * kPi * freq);
    ws.solve_complex_batch();
    for (std::size_t l = 0; l < K; ++l) {
      if (live[l] == 0) continue;
      if (!ws.complex_lane_solvable(l)) {
        results[l] = singular_error(freq);
        live[l] = 0;
        continue;
      }
      ws.complex_lane_solution(l, x_lane);
      sweeps[l].push_back({freq, probe_of(x_lane, probe_p, probe_m)});
    }
  }
  for (std::size_t l = 0; l < K; ++l) {
    if (live[l] != 0) results[l] = std::move(sweeps[l]);
  }
  return results;
}

util::Expected<std::vector<std::complex<double>>> ac_solve_at(
    const Circuit& circuit, const OpPoint& op, double freq,
    const AcOptions& options) {
  if (options.kernel == SimKernel::Dense) {
    detail::DenseAcAssembly assembly(circuit, op.node_v);
    if (!assembly.factor(2.0 * kPi * freq)) return singular_error(freq);
    return assembly.lu->solve(assembly.b);
  }
  std::optional<SimWorkspace> scratch;
  SimWorkspace* ws = options.workspace;
  if (ws != nullptr &&
      (!ws->compatible(circuit) || !ws->has_complex())) {
    return util::Error{"AC solve: workspace does not match the circuit", 2};
  }
  if (ws == nullptr) {
    scratch.emplace(circuit, SimWorkspace::Sides::Complex);
    ws = &*scratch;
  }
  ComplexStamp ctx = ws->begin_complex(op.node_v);
  circuit.stamp_complex(ctx);
  if (!ws->factor_complex(2.0 * kPi * freq)) return singular_error(freq);
  return ws->solve_complex();
}

}  // namespace autockt::spice
