#pragma once
// DC operating-point solver: damped Newton-Raphson with warm starting from a
// previous solution, plus gmin-stepping and source-stepping homotopy
// fallbacks. Non-convergence is reported through util::Expected, never as a
// silent NaN solution.

#include <vector>

#include "spice/circuit.hpp"
#include "spice/workspace.hpp"
#include "util/expected.hpp"

namespace autockt::spice {

struct DcOptions {
  int max_iterations = 120;
  double v_abstol = 1e-9;    // absolute voltage tolerance (V)
  double v_reltol = 1e-6;    // relative voltage tolerance
  double max_step = 0.4;     // Newton damping: max node-voltage move (V)
  /// Optional starting guess for node voltages (size = num_nodes incl.
  /// ground). Empty means all-zeros.
  std::vector<double> initial_node_v;

  /// Sparse is the production path; Dense keeps the legacy allocating
  /// partial-pivot kernel for parity tests and benchmarks.
  SimKernel kernel = SimKernel::Sparse;
  /// Reusable workspace for the sparse kernel (one symbolic factorization
  /// per topology). A temporary workspace is built per call when null.
  SimWorkspace* workspace = nullptr;
  /// Optional warm start: the converged operating point of a nearby design
  /// (e.g. the previous RL env step, one grid move away). Tried as Newton
  /// stage 0; on non-convergence the solver falls back to the regular
  /// cold-start stages, so the fallback chain is deterministic.
  const OpPoint* warm_start = nullptr;
};

util::Expected<OpPoint> solve_op(const Circuit& circuit,
                                 const DcOptions& options = {});

/// Batched DC operating points for K circuits sharing one topology (the
/// same frozen stamp pattern, i.e. `ws.compatible()` for every lane). The
/// warm and cold Newton stages run in lockstep over the batched kernel —
/// one restamp sweep per iteration, one SoA factor/solve for all still-
/// active lanes — and lanes retire independently the moment they converge.
/// Lanes that exhaust the cold stage fall back to the scalar homotopy chain
/// (gmin stepping, then source stepping), exactly as solve_op() would.
/// Per-lane results, convergence outcomes and Newton iteration counts are
/// identical to calling solve_op() per lane with `options[lane]`.
/// `options[lane].kernel`/`workspace` are ignored (the shared `ws` is
/// used); `warm_start` and `initial_node_v` are honoured per lane.
std::vector<util::Expected<OpPoint>> solve_op_batch(
    const std::vector<const Circuit*>& circuits,
    const std::vector<DcOptions>& options, SimWorkspace& ws);

}  // namespace autockt::spice
