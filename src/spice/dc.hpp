#pragma once
// DC operating-point solver: damped Newton-Raphson with gmin-stepping and
// source-stepping homotopy fallbacks. Non-convergence is reported through
// util::Expected, never as a silent NaN solution.

#include <vector>

#include "spice/circuit.hpp"
#include "util/expected.hpp"

namespace autockt::spice {

struct DcOptions {
  int max_iterations = 120;
  double v_abstol = 1e-9;    // absolute voltage tolerance (V)
  double v_reltol = 1e-6;    // relative voltage tolerance
  double max_step = 0.4;     // Newton damping: max node-voltage move (V)
  /// Optional starting guess for node voltages (size = num_nodes incl.
  /// ground). Empty means all-zeros.
  std::vector<double> initial_node_v;
};

util::Expected<OpPoint> solve_op(const Circuit& circuit,
                                 const DcOptions& options = {});

}  // namespace autockt::spice
