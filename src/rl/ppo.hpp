#pragma once
// Proximal Policy Optimization for the sizing environment, from scratch.
//
// Mirrors the paper's setup: a three-layer, 50-neuron policy network with a
// factored 3-way categorical head per circuit parameter, a separate value
// network, GAE(lambda) advantages, the clipped surrogate objective, and
// parallel trajectory collection (the paper uses Ray/RLlib; we use worker
// threads, each driving a VectorSizingEnv of `envs_per_worker` lockstep
// lanes, so every policy forward is batched and every simulation tick is
// one evaluate_batch() on the shared backend). Each lane's RNG stream is
// derived from the master seed and its global lane index only, so for a
// fixed seed the collected trajectories are identical for any worker/lane
// split with the same total lane count (num_workers * envs_per_worker),
// regardless of thread scheduling. Training stops when the mean episode
// reward reaches the paper's criterion (>= 0, i.e. targets are
// consistently satisfied).

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "circuits/sizing_problem.hpp"
#include "env/sizing_env.hpp"
#include "env/vector_env.hpp"
#include "eval/stats.hpp"
#include "nn/mlp.hpp"
#include "spec/spec_suite.hpp"
#include "spec/target_sampler.hpp"
#include "util/rng.hpp"

namespace autockt::rl {

struct PpoConfig {
  // Network (paper: "three layers with 50 neurons each").
  int hidden = 50;
  int hidden_layers = 3;

  // Optimization.
  int max_iterations = 80;
  int steps_per_iteration = 1200;
  int minibatch = 256;
  int epochs = 8;
  double lr_policy = 3e-4;
  double lr_value = 1e-3;
  double gamma = 0.99;
  double gae_lambda = 0.95;
  double clip = 0.2;
  double entropy_coef = 0.003;
  double max_grad_norm = 0.5;

  // Early stopping. The paper stops when "the mean reward has reached 0,
  // meaning all target specifications are consistently satisfied"; with the
  // +10 terminal bonus, *consistently* satisfied corresponds to a mean
  // episode reward near the bonus OR a goal rate near one (the former can
  // sit lower on long-horizon problems where en-route penalties accumulate).
  double target_mean_reward = 9.0;
  double target_goal_rate = 0.98;
  int stop_patience = 2;

  // Rollout engine shape: num_workers collection threads, each stepping a
  // VectorSizingEnv of envs_per_worker lockstep lanes. Trajectories depend
  // only on seed and the product num_workers * envs_per_worker. Both must
  // be >= 1 (validated by PpoConfig::validate()).
  int num_workers = 2;
  int envs_per_worker = 4;
  std::uint64_t seed = 1;

  /// Overlap value-network inference with env simulation during collection:
  /// each tick's value_batch() (needed only after the env step, for GAE)
  /// runs on a helper thread while step_all() drives the simulator. The
  /// value net is read-only during collection and uses no RNG, so the
  /// overlap is bitwise-deterministic; it pipelines the two dominant
  /// per-tick costs instead of serializing them.
  bool pipeline_inference = true;

  /// Throws std::invalid_argument on nonpositive worker/lane counts or
  /// other settings that would hang or divide by zero instead of training.
  void validate() const;

  int total_lanes() const { return num_workers * envs_per_worker; }
};

struct IterationStats {
  int iteration = 0;
  long cumulative_env_steps = 0;
  double mean_episode_reward = 0.0;
  double goal_rate = 0.0;       // fraction of episodes reaching the target
  double mean_episode_len = 0.0;
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  /// Evaluation-backend activity since training started (cumulative):
  /// real simulations vs cache hits — the paper's true cost axis.
  long cumulative_simulations = 0;
  long cumulative_cache_hits = 0;
  /// Generalization probe: greedy goal-met rate on the frozen holdout
  /// suite (TrainOptions::holdout), refreshed every holdout_interval
  /// iterations and on the final one. Compare against goal_rate (the
  /// train-sampler rate) to watch the generalization gap. Meaningful only
  /// when holdout_evaluated is true; -1 otherwise.
  double holdout_goal_rate = -1.0;
  bool holdout_evaluated = false;
};

struct TrainHistory {
  std::vector<IterationStats> iterations;
  bool converged = false;
  long total_env_steps = 0;
  /// Backend activity over the whole training run (delta from train start).
  eval::EvalStats eval_stats;
  /// Last holdout probe of the run (-1 when no holdout suite was given).
  double final_holdout_goal_rate = -1.0;
};

/// Spec-scenario training protocol: where episode targets come from and
/// which frozen suite measures generalization along the way.
struct TrainOptions {
  /// Per-episode target source (required). Drawn through each lane's own
  /// RNG stream; with several workers the sampler must be safe for
  /// concurrent sampling (spec::TargetSampler::concurrent_sampling_safe) —
  /// stateful generators like StratifiedSampler are suite generators, not
  /// training samplers, and are rejected up front. Episode outcomes are
  /// buffered per lane during collection and replayed to
  /// sampler->record_outcome in global lane order after workers join, so
  /// curriculum state updates are deterministic and worker-split-invariant
  /// (the sampling distribution is frozen within an iteration).
  std::shared_ptr<spec::TargetSampler> sampler;
  /// Frozen holdout suite the agent never trains on. When non-empty, every
  /// holdout_interval-th iteration (and the last) rolls every holdout
  /// target out greedily and reports the goal-met rate in
  /// IterationStats::holdout_goal_rate.
  spec::SpecSuite holdout;
  int holdout_interval = 5;
  /// Lockstep lanes for the holdout rollouts (cost control only; results
  /// are lane-count-invariant).
  int holdout_lanes = 8;
};

class PpoAgent {
 public:
  PpoAgent(int obs_size, int num_params, PpoConfig config);

  /// Sample an action (one {0,1,2} per parameter); optionally returns the
  /// summed log-probability. Thread-safe.
  std::vector<int> act_sample(const std::vector<double>& obs, util::Rng& rng,
                              double* logp_out = nullptr) const;

  /// Deterministic per-head argmax action. Thread-safe.
  std::vector<int> act_greedy(const std::vector<double>& obs) const;

  double value(const std::vector<double>& obs) const;

  // ---- batched inference (one GEMM per layer over all rows) --------------
  // `obs_rows` holds `rows` observations stacked row-major. Row r of the
  // result equals the corresponding single-row call bitwise; sampling draws
  // from rngs[r], preserving per-lane stream discipline. Thread-safe.

  /// Returns rows x num_params actions row-major; optional per-row summed
  /// log-probabilities in `logps`.
  std::vector<int> act_sample_batch(const std::vector<double>& obs_rows,
                                    int rows,
                                    const std::vector<util::Rng*>& rngs,
                                    std::vector<double>* logps = nullptr) const;

  /// Returns rows x num_params greedy actions row-major.
  std::vector<int> act_greedy_batch(const std::vector<double>& obs_rows,
                                    int rows) const;

  /// Returns one value estimate per row.
  std::vector<double> value_batch(const std::vector<double>& obs_rows,
                                  int rows) const;

  /// Train against environments produced by `env_factory`, drawing each
  /// episode's target from options.sampler and (optionally) probing the
  /// frozen holdout suite at checkpoint intervals. `on_iteration`, if set,
  /// observes progress (used for live logging and the reward-curve
  /// benches).
  TrainHistory train(
      const std::function<env::SizingEnv()>& env_factory,
      const TrainOptions& options,
      const std::function<void(const IterationStats&)>& on_iteration = {});

  /// Compatibility form — the paper's protocol: each episode uses a target
  /// drawn uniformly from `train_targets` (the paper's 50 sampled target
  /// specifications), no holdout probe. Identical to passing a
  /// spec::SuiteSampler over the same targets (bitwise, for a fixed seed).
  TrainHistory train(
      const std::function<env::SizingEnv()>& env_factory,
      const std::vector<circuits::SpecVector>& train_targets,
      const std::function<void(const IterationStats&)>& on_iteration = {});

  /// Greedy goal-met rate of the current policy over an explicit target
  /// set, rolled out through `holdout_lanes` lockstep lanes. Deterministic
  /// (greedy policy, fixed targets) and lane-count-invariant. Used for the
  /// holdout probe; public so tools can score checkpoints on any suite.
  double evaluate_goal_rate(
      const std::function<env::SizingEnv()>& env_factory,
      const std::vector<circuits::SpecVector>& targets,
      int holdout_lanes = 8) const;

  int obs_size() const { return obs_size_; }
  int num_params() const { return num_params_; }
  const PpoConfig& config() const { return config_; }

  void save(std::ostream& out) const;
  static PpoAgent load(std::istream& in);

 private:
  PpoConfig config_;
  int obs_size_ = 0;
  int num_params_ = 0;
  nn::Mlp policy_;
  nn::Mlp value_;
};

}  // namespace autockt::rl
