#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <istream>
#include <memory>
#include <numeric>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "nn/categorical.hpp"
#include "trace/names.hpp"
#include "trace/trace.hpp"

namespace autockt::rl {

namespace {

constexpr int kActions = env::SizingEnv::kActionsPerParam;

struct Transition {
  std::vector<double> obs;
  std::vector<int> action;
  double logp = 0.0;
  double reward = 0.0;
  double value = 0.0;
};

struct Episode {
  std::vector<Transition> steps;
  bool terminal_goal = false;   // ended by reaching the target
  double bootstrap_value = 0.0; // V(s_T) when truncated by the horizon
  double total_reward = 0.0;
};

/// Global-norm gradient clipping (in place).
void clip_grad_norm(std::vector<double>& grads, double max_norm) {
  double sq = 0.0;
  for (double g : grads) sq += g * g;
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (double& g : grads) g *= scale;
  }
}

}  // namespace

void PpoConfig::validate() const {
  if (num_workers <= 0) {
    throw std::invalid_argument(
        "PpoConfig: num_workers must be >= 1 (got " +
        std::to_string(num_workers) + ")");
  }
  if (envs_per_worker <= 0) {
    throw std::invalid_argument(
        "PpoConfig: envs_per_worker must be >= 1 (got " +
        std::to_string(envs_per_worker) + ")");
  }
  if (steps_per_iteration <= 0) {
    throw std::invalid_argument(
        "PpoConfig: steps_per_iteration must be >= 1 (got " +
        std::to_string(steps_per_iteration) + ")");
  }
  if (minibatch <= 0) {
    throw std::invalid_argument("PpoConfig: minibatch must be >= 1 (got " +
                                std::to_string(minibatch) + ")");
  }
  if (epochs <= 0) {
    throw std::invalid_argument("PpoConfig: epochs must be >= 1 (got " +
                                std::to_string(epochs) + ")");
  }
}

PpoAgent::PpoAgent(int obs_size, int num_params, PpoConfig config)
    : config_(config),
      obs_size_(obs_size),
      num_params_(num_params),
      policy_([&] {
        std::vector<int> sizes{obs_size};
        for (int i = 0; i < config.hidden_layers; ++i)
          sizes.push_back(config.hidden);
        sizes.push_back(num_params * kActions);
        return nn::Mlp(sizes, nn::Activation::Tanh, config.seed * 7919 + 1,
                       /*final_scale=*/0.01);
      }()),
      value_([&] {
        std::vector<int> sizes{obs_size};
        for (int i = 0; i < config.hidden_layers; ++i)
          sizes.push_back(config.hidden);
        sizes.push_back(1);
        return nn::Mlp(sizes, nn::Activation::Tanh, config.seed * 104729 + 2,
                       /*final_scale=*/1.0);
      }()) {}

std::vector<int> PpoAgent::act_sample(const std::vector<double>& obs,
                                      util::Rng& rng, double* logp_out) const {
  const std::vector<double> logits = policy_.forward(obs);
  std::vector<int> action(static_cast<std::size_t>(num_params_), 1);
  double logp = 0.0;
  for (int h = 0; h < num_params_; ++h) {
    const auto probs = nn::softmax_slice(
        logits, static_cast<std::size_t>(h) * kActions, kActions);
    const int a = nn::sample_categorical(probs, rng);
    action[static_cast<std::size_t>(h)] = a;
    logp += std::log(std::max(probs[static_cast<std::size_t>(a)], 1e-12));
  }
  if (logp_out != nullptr) *logp_out = logp;
  return action;
}

std::vector<int> PpoAgent::act_greedy(const std::vector<double>& obs) const {
  const std::vector<double> logits = policy_.forward(obs);
  std::vector<int> action(static_cast<std::size_t>(num_params_), 1);
  for (int h = 0; h < num_params_; ++h) {
    const auto probs = nn::softmax_slice(
        logits, static_cast<std::size_t>(h) * kActions, kActions);
    action[static_cast<std::size_t>(h)] = nn::argmax(probs);
  }
  return action;
}

double PpoAgent::value(const std::vector<double>& obs) const {
  return value_.forward(obs)[0];
}

std::vector<int> PpoAgent::act_sample_batch(
    const std::vector<double>& obs_rows, int rows,
    const std::vector<util::Rng*>& rngs, std::vector<double>* logps) const {
  if (rngs.size() != static_cast<std::size_t>(rows)) {
    throw std::invalid_argument("act_sample_batch: one RNG stream per row");
  }
  const std::vector<double> logits = policy_.forward_batch(obs_rows, rows);
  return nn::sample_heads_batch(logits, rows, num_params_, kActions, rngs,
                                logps);
}

std::vector<int> PpoAgent::act_greedy_batch(const std::vector<double>& obs_rows,
                                            int rows) const {
  const std::vector<double> logits = policy_.forward_batch(obs_rows, rows);
  return nn::argmax_heads_batch(logits, rows, num_params_, kActions);
}

std::vector<double> PpoAgent::value_batch(const std::vector<double>& obs_rows,
                                          int rows) const {
  return value_.forward_batch(obs_rows, rows);
}

TrainHistory PpoAgent::train(
    const std::function<env::SizingEnv()>& env_factory,
    const std::vector<circuits::SpecVector>& train_targets,
    const std::function<void(const IterationStats&)>& on_iteration) {
  if (train_targets.empty()) {
    throw std::invalid_argument("PpoAgent::train: no training targets");
  }
  TrainOptions options;
  options.sampler = std::make_shared<spec::SuiteSampler>(train_targets);
  return train(env_factory, options, on_iteration);
}

double PpoAgent::evaluate_goal_rate(
    const std::function<env::SizingEnv()>& env_factory,
    const std::vector<circuits::SpecVector>& targets,
    int holdout_lanes) const {
  if (targets.empty()) return -1.0;
  trace::TraceSpan span(trace::names::kRlHoldoutProbe);
  env::SizingEnv probe = env_factory();
  // Cold-start every evaluation: holdout probes interleave with training
  // collection on the shared backend cache, and pinning warm-start off
  // keeps every memoized result identical to the cold path (the same
  // contract multi-worker collection relies on).
  env::EnvConfig holdout_config = probe.config();
  holdout_config.warm_start = false;
  const int L = std::max(
      1, std::min(holdout_lanes, static_cast<int>(targets.size())));
  env::VectorSizingEnv venv(probe.problem_ptr(), holdout_config, L);

  std::vector<int> lane_target(static_cast<std::size_t>(L), -1);
  std::vector<std::vector<double>> obs(static_cast<std::size_t>(L));
  std::size_t next = 0;
  auto assign = [&](int i) {
    if (next >= targets.size()) return false;
    lane_target[static_cast<std::size_t>(i)] = static_cast<int>(next);
    venv.set_target(i, targets[next++]);
    return true;
  };
  std::vector<int> to_reset;
  for (int i = 0; i < L; ++i) {
    if (assign(i)) to_reset.push_back(i);
  }
  {
    auto fresh = venv.reset_lanes(to_reset);
    for (std::size_t k = 0; k < to_reset.size(); ++k) {
      obs[static_cast<std::size_t>(to_reset[k])] = std::move(fresh[k]);
    }
  }

  int reached = 0;
  std::vector<std::vector<int>> actions(static_cast<std::size_t>(L));
  std::vector<int> act_lanes;
  std::vector<double> rows;
  while (venv.running_count() > 0) {
    act_lanes.clear();
    rows.clear();
    for (int i = 0; i < L; ++i) {
      if (!venv.lane_running(i)) continue;
      act_lanes.push_back(i);
      const auto& o = obs[static_cast<std::size_t>(i)];
      rows.insert(rows.end(), o.begin(), o.end());
    }
    const int n = static_cast<int>(act_lanes.size());
    const std::vector<int> acts = act_greedy_batch(rows, n);
    for (int k = 0; k < n; ++k) {
      actions[static_cast<std::size_t>(act_lanes[k])].assign(
          acts.begin() + static_cast<std::size_t>(k) * num_params_,
          acts.begin() + static_cast<std::size_t>(k + 1) * num_params_);
    }
    const auto results = venv.step_all(actions, [](int) { return false; });
    to_reset.clear();
    for (int i = 0; i < L; ++i) {
      const auto& ls = results[static_cast<std::size_t>(i)];
      if (!ls.stepped) continue;
      if (!ls.done) {
        obs[static_cast<std::size_t>(i)] = ls.obs;
        continue;
      }
      reached += ls.goal_met ? 1 : 0;
      if (assign(i)) to_reset.push_back(i);
    }
    if (!to_reset.empty()) {
      auto fresh = venv.reset_lanes(to_reset);
      for (std::size_t k = 0; k < to_reset.size(); ++k) {
        obs[static_cast<std::size_t>(to_reset[k])] = std::move(fresh[k]);
      }
    }
  }
  return static_cast<double>(reached) / static_cast<double>(targets.size());
}

TrainHistory PpoAgent::train(
    const std::function<env::SizingEnv()>& env_factory,
    const TrainOptions& options,
    const std::function<void(const IterationStats&)>& on_iteration) {
  if (!options.sampler) {
    throw std::invalid_argument("PpoAgent::train: no target sampler");
  }
  config_.validate();
  if (config_.num_workers > 1 &&
      !options.sampler->concurrent_sampling_safe()) {
    throw std::invalid_argument(
        "PpoAgent::train: sampler '" + options.sampler->name() +
        "' is a sequential generator (stateful draws) and cannot feed " +
        std::to_string(config_.num_workers) +
        " collection workers; generate a SpecSuite with it and train on a "
        "SuiteSampler instead");
  }
  if (options.holdout_interval <= 0) {
    throw std::invalid_argument(
        "PpoAgent::train: holdout_interval must be >= 1");
  }
  TrainHistory history;
  util::Rng master_rng(config_.seed);
  nn::Adam opt_policy(policy_.param_count(), config_.lr_policy);
  nn::Adam opt_value(value_.param_count(), config_.lr_value);

  // All envs from the factory share one problem (and thus one evaluation
  // backend), so any instance can observe the global backend telemetry.
  env::SizingEnv stats_probe = env_factory();
  const eval::EvalStats eval_baseline = stats_probe.problem().eval_stats();

  const int workers = config_.num_workers;
  const int lanes_per_worker = config_.envs_per_worker;
  const int total_lanes = workers * lanes_per_worker;
  const std::size_t obs_width = static_cast<std::size_t>(obs_size_);
  long cumulative_steps = 0;
  int patience_hits = 0;

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    trace::TraceSpan iteration_span(trace::names::kRlIteration);
    // ---- 1. Vectorized rollout collection -------------------------------
    // Each worker thread drives one VectorSizingEnv of lanes_per_worker
    // lockstep lanes: every tick is one batched policy forward plus one
    // evaluate_batch() on the shared backend. Lane seeds are drawn in
    // global lane order, and each lane collects a fixed per-lane step
    // quota, so the episode set depends only on (seed, total_lanes) — not
    // on the worker split or thread scheduling.
    const int lane_quota =
        (config_.steps_per_iteration + total_lanes - 1) / total_lanes;
    std::vector<std::vector<Episode>> lane_episodes(
        static_cast<std::size_t>(total_lanes));
    // Episode outcomes (target, goal_met) buffered per global lane. They
    // replay into the sampler after the join, in lane order, so curriculum
    // state updates deterministically and independently of the worker
    // split; the sampling distribution itself stays frozen while workers
    // draw from it.
    std::vector<std::vector<std::pair<circuits::SpecVector, bool>>>
        lane_outcomes(static_cast<std::size_t>(total_lanes));
    std::vector<std::uint64_t> lane_seeds;
    lane_seeds.reserve(static_cast<std::size_t>(total_lanes));
    for (int l = 0; l < total_lanes; ++l)
      lane_seeds.push_back(master_rng.next());

    auto collect = [&](int w) {
      const int L = lanes_per_worker;
      const int base = w * L;
      env::SizingEnv probe = env_factory();
      // Collection pins warm starting off: warm-started evaluations depend
      // on each lane's history, and with several workers racing one shared
      // memo cache, which lane's (low-bit different) result gets memoized
      // would depend on thread timing — breaking both run-to-run
      // reproducibility and the worker/lane-split invariance contract.
      // Deployment and serial env use warm-start freely (single-threaded
      // lockstep keeps it deterministic).
      env::EnvConfig worker_config = probe.config();
      worker_config.warm_start = false;
      env::VectorSizingEnv venv(probe.problem_ptr(), worker_config, L);
      for (int i = 0; i < L; ++i) {
        venv.seed_lane(i, lane_seeds[static_cast<std::size_t>(base + i)]);
      }
      // Outcome reporting stays off: this worker buffers outcomes and the
      // trainer replays them in global lane order after the join.
      venv.set_target_sampler(options.sampler, /*report_outcomes=*/false);

      std::vector<int> lane_steps(static_cast<std::size_t>(L), 0);
      std::vector<Episode> current(static_cast<std::size_t>(L));
      std::vector<std::vector<double>> obs = venv.reset_all();
      // Each lane's live episode target (step_all auto-resets lanes and
      // resamples before we can ask, so remember it at episode start).
      std::vector<circuits::SpecVector> episode_target(
          static_cast<std::size_t>(L));
      for (int i = 0; i < L; ++i) {
        episode_target[static_cast<std::size_t>(i)] = venv.target(i);
      }

      // Scratch for the per-tick batches over the still-running lanes.
      std::vector<int> act_lanes;
      std::vector<double> rows;
      std::vector<util::Rng*> rngs;
      std::vector<double> logps;
      std::vector<std::vector<int>> actions(static_cast<std::size_t>(L));

      while (venv.running_count() > 0) {
        act_lanes.clear();
        rows.clear();
        rngs.clear();
        for (int i = 0; i < L; ++i) {
          if (!venv.lane_running(i)) continue;
          act_lanes.push_back(i);
          const auto& o = obs[static_cast<std::size_t>(i)];
          rows.insert(rows.end(), o.begin(), o.end());
          rngs.push_back(&venv.lane_rng(i));
        }
        const int n = static_cast<int>(act_lanes.size());
        const std::vector<int> acts =
            act_sample_batch(rows, n, rngs, &logps);

        for (int k = 0; k < n; ++k) {
          const std::size_t li = static_cast<std::size_t>(act_lanes[k]);
          actions[li].assign(
              acts.begin() + static_cast<std::size_t>(k) * num_params_,
              acts.begin() + static_cast<std::size_t>(k + 1) * num_params_);
          // Every running lane steps exactly once this tick; count it now
          // so the continue_lane predicate sees post-tick totals.
          ++lane_steps[li];
        }

        // The value estimates are consumed only after the env step (GAE
        // needs them with the step's reward), and value_batch() is a pure
        // read of frozen weights with no RNG — so with pipelining on, it
        // overlaps the simulator instead of serializing in front of it.
        std::vector<double> values;
        std::vector<env::VectorSizingEnv::LaneStep> results;
        const auto continue_lane = [&](int i) {
          return lane_steps[static_cast<std::size_t>(i)] < lane_quota;
        };
        if (config_.pipeline_inference) {
          trace::TraceSpan overlap_span(trace::names::kRlPipelineOverlap);
          std::future<std::vector<double>> pending_values = std::async(
              std::launch::async, [&] { return value_batch(rows, n); });
          results = venv.step_all(actions, continue_lane);
          values = pending_values.get();
        } else {
          values = value_batch(rows, n);
          results = venv.step_all(actions, continue_lane);
        }

        for (int k = 0; k < n; ++k) {
          const std::size_t li = static_cast<std::size_t>(act_lanes[k]);
          const auto& ls = results[li];
          Transition tr;
          tr.obs.assign(rows.begin() + static_cast<std::size_t>(k) * obs_width,
                        rows.begin() +
                            static_cast<std::size_t>(k + 1) * obs_width);
          tr.action = actions[li];
          tr.logp = logps[static_cast<std::size_t>(k)];
          tr.value = values[static_cast<std::size_t>(k)];
          tr.reward = ls.reward;
          Episode& ep = current[li];
          ep.total_reward += ls.reward;
          ep.steps.push_back(std::move(tr));
          if (ls.done) {
            ep.terminal_goal = ls.goal_met;
            if (!ls.goal_met) ep.bootstrap_value = value(ls.final_obs);
            lane_episodes[static_cast<std::size_t>(base) + li].push_back(
                std::move(ep));
            ep = Episode{};
            lane_outcomes[static_cast<std::size_t>(base) + li].emplace_back(
                episode_target[li], ls.goal_met);
            // The auto-reset already drew the next episode's target.
            episode_target[li] = venv.target(act_lanes[k]);
          }
          obs[li] = ls.obs;
        }
      }
    };

    {
      // Main-thread view of the collection phase; worker threads' env
      // ticks land in their own per-thread trace buffers.
      trace::TraceSpan collect_span(trace::names::kRlCollect);
      if (workers == 1) {
        collect(0);
      } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w) threads.emplace_back(collect, w);
        for (auto& t : threads) t.join();
      }
    }

    // Replay buffered episode outcomes into the sampler in global lane
    // order — the curriculum's synchronous, deterministic update point.
    for (const auto& outcomes : lane_outcomes) {
      for (const auto& [target, goal_met] : outcomes) {
        options.sampler->record_outcome(target, goal_met);
      }
    }

    // ---- 2. GAE advantages and returns ----------------------------------
    std::vector<const Transition*> batch;
    std::vector<double> advantages;
    std::vector<double> returns;
    double reward_sum = 0.0;
    double goal_sum = 0.0;
    double len_sum = 0.0;
    std::size_t episode_count = 0;

    for (const auto& episodes : lane_episodes) {
      for (const Episode& ep : episodes) {
        ++episode_count;
        reward_sum += ep.total_reward;
        goal_sum += ep.terminal_goal ? 1.0 : 0.0;
        len_sum += static_cast<double>(ep.steps.size());

        double next_value = ep.terminal_goal ? 0.0 : ep.bootstrap_value;
        double gae = 0.0;
        std::vector<double> ep_adv(ep.steps.size(), 0.0);
        for (std::size_t t = ep.steps.size(); t-- > 0;) {
          const Transition& tr = ep.steps[t];
          const double delta =
              tr.reward + config_.gamma * next_value - tr.value;
          gae = delta + config_.gamma * config_.gae_lambda * gae;
          ep_adv[t] = gae;
          next_value = tr.value;
        }
        for (std::size_t t = 0; t < ep.steps.size(); ++t) {
          batch.push_back(&ep.steps[t]);
          advantages.push_back(ep_adv[t]);
          returns.push_back(ep_adv[t] + ep.steps[t].value);
        }
      }
    }
    cumulative_steps += static_cast<long>(batch.size());

    // Normalize advantages over the iteration batch.
    {
      double mean = 0.0;
      for (double a : advantages) mean += a;
      mean /= static_cast<double>(advantages.size());
      double var = 0.0;
      for (double a : advantages) var += (a - mean) * (a - mean);
      const double stddev =
          std::sqrt(var / static_cast<double>(advantages.size())) + 1e-8;
      for (double& a : advantages) a = (a - mean) / stddev;
    }

    // ---- 3. Clipped-surrogate updates -----------------------------------
    double policy_loss_acc = 0.0;
    double value_loss_acc = 0.0;
    double entropy_acc = 0.0;
    long loss_terms = 0;

    std::vector<std::size_t> order(batch.size());
    std::iota(order.begin(), order.end(), 0);

    // Scoped via optional: the update span must close before the holdout
    // probe below opens its own top-level span.
    std::optional<trace::TraceSpan> update_span;
    update_span.emplace(trace::names::kRlUpdate);
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      // Fisher-Yates shuffle with the master stream.
      for (std::size_t i = order.size(); i-- > 1;) {
        std::swap(order[i], order[master_rng.bounded(i + 1)]);
      }
      for (std::size_t start = 0; start < order.size();
           start += static_cast<std::size_t>(config_.minibatch)) {
        const std::size_t stop = std::min(
            start + static_cast<std::size_t>(config_.minibatch), order.size());
        const double inv_b = 1.0 / static_cast<double>(stop - start);

        policy_.zero_grad();
        value_.zero_grad();

        for (std::size_t k = start; k < stop; ++k) {
          const std::size_t idx = order[k];
          const Transition& tr = *batch[idx];
          const double adv = advantages[idx];

          // Policy pass.
          nn::Mlp::Trace trace = policy_.forward_trace(tr.obs);
          double logp_new = 0.0;
          std::vector<std::vector<double>> head_probs(
              static_cast<std::size_t>(num_params_));
          for (int h = 0; h < num_params_; ++h) {
            head_probs[static_cast<std::size_t>(h)] = nn::softmax_slice(
                trace.output, static_cast<std::size_t>(h) * kActions,
                kActions);
            logp_new += std::log(std::max(
                head_probs[static_cast<std::size_t>(h)]
                          [static_cast<std::size_t>(
                              tr.action[static_cast<std::size_t>(h)])],
                1e-12));
          }
          const double ratio = std::exp(logp_new - tr.logp);
          const double unclipped = ratio * adv;
          const double clipped =
              std::clamp(ratio, 1.0 - config_.clip, 1.0 + config_.clip) * adv;
          policy_loss_acc += -std::min(unclipped, clipped);

          // dLoss/dlogp: active only when the unclipped branch is selected.
          const double dlogp =
              unclipped <= clipped ? -ratio * adv * inv_b : 0.0;

          std::vector<double> d_logits(
              static_cast<std::size_t>(num_params_ * kActions), 0.0);
          for (int h = 0; h < num_params_; ++h) {
            const auto& probs = head_probs[static_cast<std::size_t>(h)];
            const double ent = nn::entropy(probs);
            entropy_acc += ent;
            const std::size_t off = static_cast<std::size_t>(h) * kActions;
            for (int j = 0; j < kActions; ++j) {
              const double p = probs[static_cast<std::size_t>(j)];
              const double onehot =
                  tr.action[static_cast<std::size_t>(h)] == j ? 1.0 : 0.0;
              double g = dlogp * (onehot - p);
              // Entropy bonus:
              //   Loss -= c_H * H  =>  dLoss/dz += c_H * p (log p + H).
              g += config_.entropy_coef * inv_b * p *
                   (std::log(std::max(p, 1e-12)) + ent);
              d_logits[off + static_cast<std::size_t>(j)] += g;
            }
          }
          policy_.backward(trace, d_logits);

          // Value pass.
          nn::Mlp::Trace vtrace = value_.forward_trace(tr.obs);
          const double v = vtrace.output[0];
          const double err = v - returns[idx];
          value_loss_acc += 0.5 * err * err;
          value_.backward(vtrace, {err * inv_b});
          ++loss_terms;
        }

        clip_grad_norm(policy_.grads(), config_.max_grad_norm);
        clip_grad_norm(value_.grads(), config_.max_grad_norm);
        opt_policy.step(policy_.params(), policy_.grads());
        opt_value.step(value_.params(), value_.grads());
      }
    }
    update_span.reset();

    // ---- 4. Bookkeeping and early stop -----------------------------------
    IterationStats stats;
    stats.iteration = iter;
    stats.cumulative_env_steps = cumulative_steps;
    stats.mean_episode_reward =
        reward_sum / static_cast<double>(episode_count);
    stats.goal_rate = goal_sum / static_cast<double>(episode_count);
    stats.mean_episode_len = len_sum / static_cast<double>(episode_count);
    stats.policy_loss =
        policy_loss_acc / static_cast<double>(std::max(loss_terms, 1L));
    stats.value_loss =
        value_loss_acc / static_cast<double>(std::max(loss_terms, 1L));
    stats.entropy = entropy_acc /
                    static_cast<double>(std::max(loss_terms, 1L) * num_params_);
    // Early-stop decision BEFORE the holdout probe, so the final iteration
    // (stopped or not) always carries a fresh holdout measurement.
    bool stopping = false;
    if (stats.mean_episode_reward >= config_.target_mean_reward ||
        stats.goal_rate >= config_.target_goal_rate) {
      if (++patience_hits >= config_.stop_patience) {
        history.converged = true;
        stopping = true;
      }
    } else {
      patience_hits = 0;
    }
    const bool last_iteration = stopping || iter + 1 == config_.max_iterations;

    if (!options.holdout.empty() &&
        (iter % options.holdout_interval == 0 || last_iteration)) {
      stats.holdout_goal_rate = evaluate_goal_rate(
          env_factory, options.holdout.targets(), options.holdout_lanes);
      stats.holdout_evaluated = true;
      history.final_holdout_goal_rate = stats.holdout_goal_rate;
    }

    // Backend telemetry after the probe, so the iteration's cumulative
    // counters include every simulation this iteration actually cost
    // (collection AND holdout rollouts).
    const eval::EvalStats eval_now =
        stats_probe.problem().eval_stats().since(eval_baseline);
    stats.cumulative_simulations = eval_now.simulations;
    stats.cumulative_cache_hits = eval_now.cache_hits;

    history.iterations.push_back(stats);
    if (on_iteration) on_iteration(stats);
    if (stopping) break;
  }
  history.total_env_steps = cumulative_steps;
  history.eval_stats = stats_probe.problem().eval_stats().since(eval_baseline);
  return history;
}

void PpoAgent::save(std::ostream& out) const {
  out << "ppo_agent " << obs_size_ << " " << num_params_ << "\n";
  policy_.save(out);
  value_.save(out);
}

PpoAgent PpoAgent::load(std::istream& in) {
  std::string magic;
  int obs_size = 0, num_params = 0;
  in >> magic >> obs_size >> num_params;
  if (magic != "ppo_agent") {
    throw std::runtime_error("PpoAgent::load: bad header");
  }
  PpoConfig config;
  PpoAgent agent(obs_size, num_params, config);
  agent.policy_ = nn::Mlp::load(in);
  agent.value_ = nn::Mlp::load(in);
  return agent;
}

}  // namespace autockt::rl
