#pragma once
// Geometry-driven parasitic model: the stand-in for the Berkeley Analog
// Generator's layout + extraction flow (see docs/DESIGN.md substitution table).
//
// A layout generator produces, for a given parameter vector, a deterministic
// layout — and therefore deterministic parasitics that grow with device
// sizes and routing complexity. We model exactly those properties:
//   * every annotated internal net receives a grounded wiring capacitance
//     with a fixed floor plus a term proportional to the attached gate width
//   * a deterministic pseudo-random layout factor (hashed from the net key)
//     perturbs each capacitance, emulating placement/routing idiosyncrasy
//     without breaking reproducibility
// The net effect matches what the paper exploits: PEX evaluation shifts
// bandwidth and phase margin in a way that correlates with, but differs
// from, the schematic — so a schematic-trained agent remains useful but
// needs extra corrective steps (Table IV).

#include <cstdint>
#include <string>

namespace autockt::pex {

struct ParasiticModel {
  /// Fixed wiring/via capacitance floor per annotated net (F).
  double cap_fixed = 2.0e-15;
  /// Routing capacitance per meter of attached device width (F/m).
  double cap_per_width = 0.8e-9;
  /// Relative amplitude of the deterministic layout variation, in [0, 1).
  double variation = 0.25;
  /// Salt mixed into the per-net hash; lets tests derive distinct layouts.
  std::uint64_t salt = 0x5eedULL;

  /// Parasitic capacitance for a net with `attached_width_m` of total device
  /// width connected to it. Deterministic in (net_key, salt).
  double net_cap(double attached_width_m, std::uint64_t net_key) const;

  /// Stable key for a named net of a named topology.
  static std::uint64_t net_key(const std::string& topology,
                               const std::string& net);
};

}  // namespace autockt::pex
