#pragma once
// Process/voltage/temperature corners. The paper's BAG flow simulates each
// candidate design across PVT variations and takes the worst performing
// metric; we reproduce that with corner-perturbed technology cards.

#include <string>
#include <vector>

#include "spice/mosfet.hpp"

namespace autockt::pex {

struct PvtCorner {
  std::string name;
  double vdd_scale = 1.0;        // supply multiplier
  double vth_shift = 0.0;        // added to both Vth magnitudes (V)
  double mobility_scale = 1.0;   // uCox multiplier
  double temp_k = 300.0;
};

/// Typical / slow-hot-lowV / fast-cold-highV corner set.
std::vector<PvtCorner> standard_corners();

/// Derive a corner card from the nominal technology card.
spice::TechCard apply_corner(spice::TechCard card, const PvtCorner& corner);

}  // namespace autockt::pex
