#include "pex/parasitics.hpp"

namespace autockt::pex {

namespace {
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

double ParasiticModel::net_cap(double attached_width_m,
                               std::uint64_t net_key) const {
  const double base = cap_fixed + cap_per_width * attached_width_m;
  // Deterministic layout factor in [1 - variation, 1 + variation].
  const std::uint64_t h = mix(net_key ^ mix(salt));
  const double unit =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform [0, 1)
  return base * (1.0 + variation * (2.0 * unit - 1.0));
}

std::uint64_t ParasiticModel::net_key(const std::string& topology,
                                      const std::string& net) {
  return mix(fnv1a(topology) * 31 + fnv1a(net));
}

}  // namespace autockt::pex
