#include "pex/pvt.hpp"

#include <cmath>

namespace autockt::pex {

std::vector<PvtCorner> standard_corners() {
  return {
      {"tt", 1.0, 0.0, 1.0, 300.0},
      {"ss_hot_lv", 0.95, +0.03, 0.89, 358.0},
      {"ff_cold_hv", 1.05, -0.03, 1.10, 248.0},
  };
}

spice::TechCard apply_corner(spice::TechCard card, const PvtCorner& corner) {
  card.name += "@" + corner.name;
  card.vdd *= corner.vdd_scale;
  card.vth_n += corner.vth_shift;
  card.vth_p += corner.vth_shift;
  // First-order temperature dependence: mobility degrades as T^-1.5 around
  // the nominal 300 K, thresholds drift -0.3 mV/K (FinFET-class tempco,
  // small enough that a slow-corner Vth shift stays a net increase).
  const double t_ratio = corner.temp_k / 300.0;
  const double mobility_temp = 1.0 / (t_ratio * std::sqrt(t_ratio));
  card.u_cox_n *= corner.mobility_scale * mobility_temp;
  card.u_cox_p *= corner.mobility_scale * mobility_temp;
  const double vth_drift = -0.3e-3 * (corner.temp_k - 300.0);
  card.vth_n += vth_drift;
  card.vth_p += vth_drift;
  card.temp_k = corner.temp_k;
  return card;
}

}  // namespace autockt::pex
