// Seed-robustness check (paper Section III: "Each training session is
// conducted several times to ensure that AutoCkt is robust to variations in
// random seed"). Trains the negative-gm OTA agent from several seeds with a
// reduced budget and reports training and deployment quality per seed.

#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parse_scale(argc, argv);
  util::CliArgs args(argc, argv);
  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_ngm_problem());
  core::print_experiment_header(
      "Robustness", "Training robustness to random seeds (paper Section III)",
      *problem);

  const int n_seeds =
      static_cast<int>(args.get_int("seeds", scale.quick ? 2 : 3));
  const auto n_deploy = static_cast<std::size_t>(
      args.get_int("deploy", scale.quick ? 50 : 150));

  util::Table table({"seed", "converged", "env steps", "deploy reached",
                     "deploy avg steps"});
  std::vector<double> reach_fractions;

  for (int s = 0; s < n_seeds; ++s) {
    core::AutoCktConfig config = bench::training_config(problem->name, scale);
    config.seed = scale.seed + 101 * static_cast<std::uint64_t>(s);
    config.ppo.max_iterations = scale.quick ? 10 : 30;
    auto outcome = core::train_agent(problem, config);

    util::Rng rng(1234);  // identical deployment targets for every seed
    const auto targets = env::sample_targets(*problem, n_deploy, rng);
    const auto stats = core::deploy_agent(outcome.agent, problem, targets,
                                          config.env_config);
    reach_fractions.push_back(stats.reach_fraction());
    table.add_row({std::to_string(config.seed),
                   outcome.history.converged ? "yes" : "no",
                   std::to_string(outcome.history.total_env_steps),
                   std::to_string(stats.reached_count()) + "/" +
                       std::to_string(stats.total()),
                   util::Table::num(stats.avg_steps_reached())});
    std::printf("  seed %d done\n", s);
    std::fflush(stdout);
  }

  std::printf("\n");
  table.print();
  const double worst = util::min_of(reach_fractions);
  const double spread =
      util::max_of(reach_fractions) - util::min_of(reach_fractions);
  std::printf("\nreach fraction: worst %.2f, spread %.2f across seeds\n",
              worst, spread);
  std::printf("shape check (every seed trains to a deployable agent, reach "
              ">= 0.8 and spread <= 0.2): %s\n",
              (worst >= 0.8 && spread <= 0.2) ? "PASS" : "FAIL");
  return 0;
}
