// Figure 11: mean episode reward over environment steps for the two-stage
// OTA with negative-gm load (Spectre schematic in the paper, the finfet16
// surrogate here). Trains the agent (cached for Table III / IV and the
// figure benches that deploy it).

#include "bench_common.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parse_scale(argc, argv);
  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_ngm_problem());
  core::print_experiment_header(
      "Figure 11", "Negative-gm OTA mean episode reward over training",
      *problem);

  auto outcome = bench::get_or_train_agent(
      problem, scale, /*force_train=*/true, [](const rl::IterationStats& s) {
        std::printf("  iter %3d  steps %7ld  reward %7.2f  goal_rate %.2f\n",
                    s.iteration, s.cumulative_env_steps,
                    s.mean_episode_reward, s.goal_rate);
        std::fflush(stdout);
      });

  bench::print_training_curve(outcome.history);
  bench::save_training_curve_csv(outcome.history, "fig11_ngm_training.csv");

  std::printf("\npaper sim-time model (2.4 s Spectre sims): %.1f hours of "
              "simulation for %ld steps\n",
              core::paper_equivalent_hours(
                  static_cast<double>(outcome.history.total_env_steps),
                  problem->paper_sim_seconds),
              outcome.history.total_env_steps);

  const auto& iters = outcome.history.iterations;
  const bool shape_ok =
      !iters.empty() && iters.front().mean_episode_reward < 0.0 &&
      iters.back().mean_episode_reward > 0.0;
  std::printf("shape check (starts < 0, ends > 0): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return 0;
}
