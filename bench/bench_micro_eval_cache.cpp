// Micro-benchmarks for the evaluation-backend layer: what a memo-cache hit
// costs versus a real simulation, how much a batched PEX evaluation gains
// from corner fan-out, and the raw overhead of the backend stack. These
// bound the economics of the cache: one RL environment step is one
// evaluation, and PPO revisits the grid centre every episode.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "circuits/problems.hpp"
#include "eval/cached_backend.hpp"
#include "eval/thread_pool.hpp"
#include "util/rng.hpp"

using namespace autockt;

namespace {

/// A deterministic spread of valid grid points around the centre.
std::vector<circuits::ParamVector> sample_points(
    const circuits::SizingProblem& prob, std::size_t count,
    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<circuits::ParamVector> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    circuits::ParamVector p;
    p.reserve(prob.params.size());
    for (const auto& def : prob.params) {
      p.push_back(static_cast<int>(
          rng.bounded(static_cast<std::uint64_t>(def.grid_size()))));
    }
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace

// ---- cached vs uncached single-point throughput ----------------------------

static void BM_EvalUncached_TwoStage(benchmark::State& state) {
  circuits::ProblemOptions options;
  options.cache = false;
  options.parallel_batch = false;
  options.parallel_corners = false;
  const auto prob = circuits::make_two_stage_problem(options);
  const auto center = prob.center_params();
  for (auto _ : state) benchmark::DoNotOptimize(prob.evaluate(center).ok());
}
BENCHMARK(BM_EvalUncached_TwoStage);

static void BM_EvalCachedHit_TwoStage(benchmark::State& state) {
  const auto prob = circuits::make_two_stage_problem();
  const auto center = prob.center_params();
  benchmark::DoNotOptimize(prob.evaluate(center).ok());  // warm the cache
  for (auto _ : state) benchmark::DoNotOptimize(prob.evaluate(center).ok());
}
BENCHMARK(BM_EvalCachedHit_TwoStage);

static void BM_EvalCachedHit_Pex(benchmark::State& state) {
  const auto prob = circuits::make_ngm_pex_problem();
  const auto center = prob.center_params();
  benchmark::DoNotOptimize(prob.evaluate(center).ok());
  for (auto _ : state) benchmark::DoNotOptimize(prob.evaluate(center).ok());
}
BENCHMARK(BM_EvalCachedHit_Pex);

// ---- PEX corners: serial loop vs parallel CornerBackend --------------------

static void BM_PexCornersSerial(benchmark::State& state) {
  circuits::ProblemOptions options;
  options.cache = false;
  options.parallel_batch = false;
  options.parallel_corners = false;
  const auto prob = circuits::make_ngm_pex_problem(options);
  const auto center = prob.center_params();
  for (auto _ : state) benchmark::DoNotOptimize(prob.evaluate(center).ok());
}
BENCHMARK(BM_PexCornersSerial);

static void BM_PexCornersParallel(benchmark::State& state) {
  circuits::ProblemOptions options;
  options.cache = false;
  const auto prob = circuits::make_ngm_pex_problem(options);
  const auto center = prob.center_params();
  for (auto _ : state) benchmark::DoNotOptimize(prob.evaluate(center).ok());
}
BENCHMARK(BM_PexCornersParallel);

// ---- batch-vs-serial population evaluation (the GA's unit of work) ---------

static void BM_PexBatchSerial(benchmark::State& state) {
  circuits::ProblemOptions options;
  options.cache = false;
  options.parallel_batch = false;
  options.parallel_corners = false;
  const auto prob = circuits::make_ngm_pex_problem(options);
  const auto points =
      sample_points(prob, static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob.evaluate_batch(points).size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_PexBatchSerial)->Arg(8)->Arg(32);

static void BM_PexBatchParallel(benchmark::State& state) {
  circuits::ProblemOptions options;
  options.cache = false;
  const auto prob = circuits::make_ngm_pex_problem(options);
  const auto points =
      sample_points(prob, static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob.evaluate_batch(points).size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_PexBatchParallel)->Arg(8)->Arg(32);

static void BM_TwoStageBatchParallel(benchmark::State& state) {
  circuits::ProblemOptions options;
  options.cache = false;  // isolate fan-out gain from cache effects
  const auto prob = circuits::make_two_stage_problem(options);
  const auto points =
      sample_points(prob, static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob.evaluate_batch(points).size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_TwoStageBatchParallel)->Arg(64);

BENCHMARK_MAIN();
