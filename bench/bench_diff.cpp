// bench_diff: compare two BENCH_*.json snapshots written by bench_snapshot
// and fail loudly on a perf-trajectory regression.
//
//   bench_diff <baseline.json> <candidate.json>
//             [--time-tol=2.0] [--counter-tol=0.25] [--rate-tol=0.35]
//
// Timings: each bench's ns/op is divided by its own snapshot's
// calibration_ns_per_op before comparing, so baseline and candidate need
// not come from the same machine. A bench regresses when
//   (cand_ns / cand_calib) > time-tol * (base_ns / base_calib);
// improvements always pass. The default 2x band is deliberately wide:
// these are low-rep self-timed numbers on shared CI runners, and the
// snapshot exists to catch order-of-magnitude trajectory breaks (a kernel
// silently falling back to dense), not 10% drift.
//
// Counters: relative band (default +-25%, denominator max(|base|, 1)),
// failing in BOTH directions — a counter that drops (e.g. fewer cache hits
// because a workload silently shrank) invalidates the baseline just as
// much as one that grows, and the fix is to refresh BENCH_seed.json per
// docs/EXPERIMENTS.md. Names ending in "_rate" compare as absolute
// differences (default 0.35) since goal rates hover near 0/1 where
// relative bands are meaningless.
//
// A bench or counter present in the baseline but missing from the
// candidate is a failure (lost coverage must be loud); extra candidate
// entries are reported but pass (new benches land before the baseline
// refresh).
//
// Exit codes: 0 within tolerance, 1 regression (or unreadable snapshot),
// 2 usage error.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/cli.hpp"
#include "util/json.hpp"

using autockt::util::JsonValue;

namespace {

bool load_snapshot(const std::string& path, JsonValue& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = JsonValue::parse(text.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path.c_str(),
                 parsed.error().message.c_str());
    return false;
  }
  const JsonValue* schema = parsed->find("schema");
  if (!schema || schema->as_string() != "autockt-bench-v1") {
    std::fprintf(stderr, "bench_diff: %s is not an autockt-bench-v1 snapshot\n",
                 path.c_str());
    return false;
  }
  out = std::move(*parsed);
  return true;
}

bool is_rate(const std::string& name) {
  const std::string suffix = "_rate";
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  autockt::util::CliArgs args(argc, argv);
  if (args.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <candidate.json> "
                 "[--time-tol=2.0] [--counter-tol=0.25] [--rate-tol=0.35]\n");
    return 2;
  }
  const double time_tol = args.get_double("time-tol", 2.0);
  const double counter_tol = args.get_double("counter-tol", 0.25);
  const double rate_tol = args.get_double("rate-tol", 0.35);
  if (time_tol <= 0.0 || counter_tol <= 0.0 || rate_tol <= 0.0) {
    std::fprintf(stderr, "bench_diff: tolerances must be positive\n");
    return 2;
  }

  JsonValue base, cand;
  if (!load_snapshot(args.positional()[0], base) ||
      !load_snapshot(args.positional()[1], cand)) {
    return 1;
  }

  const double base_calib =
      base.find("calibration_ns_per_op")
          ? base.find("calibration_ns_per_op")->as_number()
          : 0.0;
  const double cand_calib =
      cand.find("calibration_ns_per_op")
          ? cand.find("calibration_ns_per_op")->as_number()
          : 0.0;
  if (base_calib <= 0.0 || cand_calib <= 0.0) {
    std::fprintf(stderr, "bench_diff: missing or zero calibration_ns_per_op\n");
    return 1;
  }

  int failures = 0;
  const auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "FAIL %s\n", what.c_str());
    ++failures;
  };
  const auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return std::string(buf);
  };

  // ---- benches: calibration-normalized timing ratios -----------------------
  const JsonValue* base_benches = base.find("benches");
  const JsonValue* cand_benches = cand.find("benches");
  if (!base_benches || !cand_benches) {
    std::fprintf(stderr, "bench_diff: snapshot missing \"benches\"\n");
    return 1;
  }
  std::printf("%-34s %14s %14s %8s\n", "bench", "base(norm)", "cand(norm)",
              "ratio");
  for (const auto& [name, entry] : base_benches->members()) {
    const JsonValue* cand_entry = cand_benches->find(name);
    if (!cand_entry) {
      fail("bench " + name + ": missing from candidate");
      continue;
    }
    const JsonValue* base_ns = entry.find("ns_per_op");
    const JsonValue* cand_ns = cand_entry->find("ns_per_op");
    if (!base_ns || !cand_ns) {
      fail("bench " + name + ": malformed entry (no ns_per_op)");
      continue;
    }
    const double b = base_ns->as_number() / base_calib;
    const double c = cand_ns->as_number() / cand_calib;
    const double ratio = b > 0.0 ? c / b : 0.0;
    std::printf("%-34s %14.3f %14.3f %7.2fx%s\n", name.c_str(), b, c, ratio,
                ratio > time_tol ? "  << REGRESSION" : "");
    if (ratio > time_tol) {
      fail("bench " + name + ": normalized time " + num(c) + " vs baseline " +
           num(b));
    }
  }
  for (const auto& [name, entry] : cand_benches->members()) {
    (void)entry;
    if (!base_benches->find(name)) {
      std::printf("note: bench %s is new in the candidate (not compared)\n",
                  name.c_str());
    }
  }

  // ---- counters: tolerance bands, both directions --------------------------
  const JsonValue* base_counters = base.find("counters");
  const JsonValue* cand_counters = cand.find("counters");
  if (!base_counters || !cand_counters) {
    std::fprintf(stderr, "bench_diff: snapshot missing \"counters\"\n");
    return 1;
  }
  for (const auto& [name, entry] : base_counters->members()) {
    const JsonValue* cand_entry = cand_counters->find(name);
    if (!cand_entry) {
      fail("counter " + name + ": missing from candidate");
      continue;
    }
    const double b = entry.as_number();
    const double c = cand_entry->as_number();
    bool ok;
    if (is_rate(name)) {
      ok = std::fabs(c - b) <= rate_tol;
    } else {
      const double denom = std::fabs(b) > 1.0 ? std::fabs(b) : 1.0;
      ok = std::fabs(c - b) / denom <= counter_tol;
    }
    if (!ok) {
      fail("counter " + name + ": " + num(c) + " vs baseline " + num(b));
    }
  }
  for (const auto& [name, entry] : cand_counters->members()) {
    (void)entry;
    if (!base_counters->find(name)) {
      std::printf("note: counter %s is new in the candidate (not compared)\n",
                  name.c_str());
    }
  }

  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_diff: %d regression(s); if intentional, refresh the "
                 "baseline (docs/EXPERIMENTS.md, \"Refreshing "
                 "BENCH_seed.json\")\n",
                 failures);
    return 1;
  }
  std::printf("bench_diff: OK (%zu benches, %zu counters within tolerance)\n",
              base_benches->members().size(), base_counters->members().size());
  return 0;
}
