// Figure 7: mean reward over environment steps for the two-stage op-amp.
// The paper notes the agent takes on the order of 1e4 steps to reach mean
// reward 0, and that wall-clock stays tractable because one schematic
// simulation is ~25 ms. Trains the op-amp agent (cached for Table II /
// Fig. 8) and reports both the curve and the paper-cost time model.

#include "bench_common.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parse_scale(argc, argv);
  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_two_stage_problem());
  core::print_experiment_header(
      "Figure 7", "Two-stage op-amp mean reward vs environment steps",
      *problem);

  auto outcome = bench::get_or_train_agent(
      problem, scale, /*force_train=*/true, [](const rl::IterationStats& s) {
        std::printf("  iter %3d  steps %7ld  reward %7.2f  goal_rate %.2f\n",
                    s.iteration, s.cumulative_env_steps,
                    s.mean_episode_reward, s.goal_rate);
        std::fflush(stdout);
      });

  bench::print_training_curve(outcome.history);
  bench::save_training_curve_csv(outcome.history, "fig7_opamp_training.csv");

  // Cross the training step count with the paper's per-simulation cost.
  const long steps = outcome.history.total_env_steps;
  std::printf("\ntotal environment steps: %ld\n", steps);
  std::printf("paper sim-time model (25 ms/sim): %.2f hours "
              "(paper reports 1.3 h on 8 cores for ~1e4+ steps)\n",
              core::paper_equivalent_hours(static_cast<double>(steps),
                                           problem->paper_sim_seconds));

  const auto& iters = outcome.history.iterations;
  const bool order_ok = steps >= 5000;  // paper: order 1e4
  const bool shape_ok =
      !iters.empty() && iters.front().mean_episode_reward < 0.0 &&
      iters.back().mean_episode_reward > 0.0;
  std::printf("shape check (curve climbs from <0 to >0, ~1e4-1e5 steps): %s\n",
              (shape_ok && order_ok) ? "PASS" : "FAIL");
  return 0;
}
