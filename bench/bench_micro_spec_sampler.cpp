// Micro-benchmarks for the spec-scenario subsystem: target draws per second
// for the three samplers (uniform / stratified / curriculum), the curriculum
// outcome-update path, and SpecSuite generation + CSV round-trip. Target
// sampling sits on the reset path of every training episode, so a sampler
// must stay a rounding error next to one circuit simulation.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "circuits/problems.hpp"
#include "spec/spec_space.hpp"
#include "spec/spec_suite.hpp"
#include "spec/target_sampler.hpp"
#include "util/rng.hpp"

using namespace autockt;

namespace {

spec::SpecSpace two_stage_space() {
  return spec::SpecSpace(circuits::make_two_stage_problem().specs);
}

}  // namespace

static void BM_UniformSampler(benchmark::State& state) {
  spec::UniformSampler sampler(two_stage_space());
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_UniformSampler);

static void BM_StratifiedSampler(benchmark::State& state) {
  spec::StratifiedSampler sampler(two_stage_space(),
                                  static_cast<int>(state.range(0)));
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_StratifiedSampler)->Arg(16)->Arg(256);

static void BM_CurriculumSampler(benchmark::State& state) {
  spec::CurriculumConfig config;
  config.bins_per_axis = static_cast<int>(state.range(0));
  spec::CurriculumSampler sampler(two_stage_space(), config);
  util::Rng rng(3);
  // Mixed-success region statistics so the weight table is non-trivial.
  for (int i = 0; i < 500; ++i) {
    sampler.record_outcome(sampler.sample(rng), (i % 3) == 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_CurriculumSampler)->Arg(2)->Arg(3);

static void BM_CurriculumRecordOutcome(benchmark::State& state) {
  spec::CurriculumSampler sampler(two_stage_space(), {});
  util::Rng rng(4);
  const auto target = sampler.sample(rng);
  bool met = false;
  for (auto _ : state) {
    sampler.record_outcome(target, met);
    met = !met;
  }
  benchmark::DoNotOptimize(sampler.outcomes_recorded());
}
BENCHMARK(BM_CurriculumRecordOutcome);

static void BM_SuiteGenerateAndSplit(benchmark::State& state) {
  const spec::SpecSpace space = two_stage_space();
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto suites = spec::make_train_holdout_suites(space, n, n / 4, 0xa11ce,
                                                  "bench");
    benchmark::DoNotOptimize(suites.holdout.size());
  }
}
BENCHMARK(BM_SuiteGenerateAndSplit)->Arg(50)->Arg(1000);

static void BM_SuiteCsvRoundTrip(benchmark::State& state) {
  const spec::SpecSpace space = two_stage_space();
  spec::UniformSampler sampler(space);
  const spec::SpecSuite suite = spec::SpecSuite::generate(
      space, sampler, static_cast<std::size_t>(state.range(0)), 7, "bench");
  for (auto _ : state) {
    auto parsed = spec::SpecSuite::from_csv(suite.to_csv());
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_SuiteCsvRoundTrip)->Arg(50)->Arg(1000);

BENCHMARK_MAIN();
