// Table II: sample efficiency and generalization on the two-stage op-amp.
// Paper rows: GA 1063 sims (op-amp) / 376 (TIA); random RL agent reaches
// 38/1000; this work SE 27 (op-amp) / 15 (TIA); generalization 963/1000.

#include "bench_common.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parse_scale(argc, argv);
  util::CliArgs args(argc, argv);
  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_two_stage_problem());
  core::print_experiment_header(
      "Table II", "Two-stage op-amp sample efficiency + generalization",
      *problem);

  auto outcome = bench::get_or_train_agent(problem, scale);
  const auto config = bench::training_config(problem->name, scale);

  // One shared suite: the RL, random-agent and GA rows all score against
  // (prefixes of) the same named target set.
  const auto n_deploy = static_cast<std::size_t>(
      args.get_int("deploy", scale.quick ? 100 : 1000));
  const spec::SpecSuite suite =
      core::make_deploy_suite(*problem, n_deploy, scale.seed + 1);
  const auto stats =
      core::deploy_agent(outcome.agent, problem, suite, config.env_config);

  // Random agent row (paper: 38/1000 within one episode).
  const auto n_random = static_cast<std::size_t>(
      args.get_int("random_targets", scale.quick ? 100 : 1000));
  const auto random_agg = core::run_random_over_suite(
      problem, suite.head(n_random), config.env_config, scale.seed + 5);

  // GA row.
  const auto n_ga =
      static_cast<std::size_t>(
          args.get_int("ga_targets", scale.quick ? 3 : 10));
  baselines::GaConfig ga;
  ga.max_evals = 10000;
  ga.seed = scale.seed;
  const auto ga_agg =
      core::run_ga_over_suite(*problem, suite.head(n_ga), ga, {20, 40, 80});

  util::Table table({"metric", "paper", "measured"});
  table.add_row({"Genetic Alg. Op Amp SE", "1063",
                 util::Table::num(ga_agg.avg_evals_to_reach, 3) + " (" +
                     std::to_string(ga_agg.reached) + "/" +
                     std::to_string(ga_agg.targets) + " reached)"});
  table.add_row({"Random RL Agent generalization", "38/1000",
                 std::to_string(random_agg.reached) + "/" +
                     std::to_string(random_agg.targets)});
  table.add_row({"This Work Op Amp SE", "27",
                 util::Table::num(stats.avg_steps_reached(), 3)});
  table.add_row({"Generalization Op Amp", "963/1000 (96.3%)",
                 std::to_string(stats.reached_count()) + "/" +
                     std::to_string(stats.total()) + " (" +
                     util::Table::num(100.0 * stats.reach_fraction(), 3) +
                     "%)"});
  table.add_row({"SE speedup vs GA", "~40x",
                 core::speedup_string(ga_agg.avg_evals_to_reach,
                                      stats.avg_steps_reached())});
  table.print();

  const double random_rate =
      static_cast<double>(random_agg.reached) / random_agg.targets;
  std::printf("\nshape checks: RL >> random agent (%s), RL beats GA per "
              "target (%s), generalization factor vs 50 training targets: "
              "%.0fx (paper: 20x)\n",
              stats.reach_fraction() > 5.0 * random_rate + 0.05 ? "PASS"
                                                                : "FAIL",
              stats.avg_steps_reached() < ga_agg.avg_evals_to_reach ? "PASS"
                                                                    : "FAIL",
              stats.reach_fraction() * static_cast<double>(stats.total()) /
                  50.0);
  return 0;
}
