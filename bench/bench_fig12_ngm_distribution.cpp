// Figure 12: distribution of reached target design specifications for the
// negative-gm OTA — the paper highlights that this example has NO unreached
// objectives. Deploys the trained agent and dumps the target tuples with
// reached flags.

#include "bench_common.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parse_scale(argc, argv);
  util::CliArgs args(argc, argv);
  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_ngm_problem());
  core::print_experiment_header(
      "Figure 12", "Reached-target distribution (negative-gm OTA)", *problem);

  auto outcome = bench::get_or_train_agent(problem, scale);
  const auto config = bench::training_config(problem->name, scale);

  const auto n_deploy = static_cast<std::size_t>(
      args.get_int("deploy", scale.quick ? 100 : 500));
  util::Rng rng(scale.seed + 1);
  const auto targets = env::sample_targets(*problem, n_deploy, rng);
  const auto stats =
      core::deploy_agent(outcome.agent, problem, targets, config.env_config);

  util::CsvWriter csv({"target_gain", "target_ugbw", "target_pm", "reached",
                       "steps"});
  for (const auto& r : stats.records) {
    csv.add_row({r.target[0], r.target[1], r.target[2],
                 r.reached ? 1.0 : 0.0, static_cast<double>(r.steps)});
  }
  if (csv.save("fig12_ngm_distribution.csv")) {
    std::printf("[bench] wrote fig12_ngm_distribution.csv\n");
  }

  std::printf("\nreached %d/%d targets (paper: 500/500, no unreached "
              "objectives)\n",
              stats.reached_count(), stats.total());
  std::printf("avg steps per reached target: %.1f (paper: 10)\n",
              stats.avg_steps_reached());
  std::printf("shape check (>= 98%% reached): %s\n",
              stats.reach_fraction() >= 0.98 ? "PASS" : "FAIL");
  return 0;
}
