// bench_snapshot: the perf-trajectory capture tool. Runs a fixed set of
// self-timed micro workloads (mirroring bench_micro_sim / bench_micro_eval
// cache without needing Google Benchmark) plus fixed-seed deterministic
// counter workloads (a short synthetic PPO run, a warm-started kernel
// characterization loop, a cache-hit loop, a traced evaluation loop), and
// writes one normalized BENCH_<context>.json snapshot:
//
//   {"schema": "autockt-bench-v1",
//    "context": {label, git_sha, host, cores, compiler, build,
//                trace_compiled},
//    "calibration_ns_per_op": <machine-speed yardstick>,
//    "benches": {name: {"ns_per_op": N, "reps": R}, ...},
//    "counters": {name: value, ...}}
//
// bench_diff compares two snapshots: timings are normalized by the
// calibration ratio so a faster/slower machine does not read as a
// regression, counters sit in tolerance bands (see bench_diff.cpp).
// Counter values are deterministic for a fixed seed on a given
// libm/compiler; docs/EXPERIMENTS.md documents when to refresh the
// committed BENCH_seed.json baseline.
//
// Usage: bench_snapshot [--out=BENCH_local.json] [--label=local]
//                       [--sha=<git sha>] [--reps-scale=1.0]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "autockt/autockt.hpp"
#include "circuits/problems.hpp"
#include "circuits/synthetic.hpp"
#include "circuits/tia.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "env/vector_env.hpp"
#include "eval/types.hpp"
#include "spec/target_sampler.hpp"
#include "spice/workspace.hpp"
#include "trace/names.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace autockt;

namespace {

/// Mirrors bench_micro_sim: full-eval workloads measure the raw simulator,
/// not the memo cache / fan-out layers (eval_cache_hit measures those).
circuits::ProblemOptions raw_options() {
  circuits::ProblemOptions options;
  options.cache = false;
  options.parallel_batch = false;
  options.parallel_corners = false;
  return options;
}

struct BenchRow {
  std::string name;
  double ns_per_op = 0.0;
  int reps = 0;
};

/// Self-timed bench: a short warmup, then `reps` calls split across 5
/// timed batches, reporting the FASTEST batch's ns/op. The minimum is the
/// standard defense against scheduler interference on shared runners — an
/// interrupted batch only inflates the mean, it cannot deflate the min —
/// and the 2x tolerance band in bench_diff absorbs what is left.
BenchRow time_bench(const std::string& name, int reps,
                    const std::function<void(int)>& body) {
  const int batches = 5;
  const int per_batch = reps / batches + 1;
  const int warmup = per_batch / 2 + 1;
  int n = 0;
  for (int i = 0; i < warmup; ++i) body(n++);
  double best_ns = 0.0;
  for (int b = 0; b < batches; ++b) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < per_batch; ++i) body(n++);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(per_batch);
    if (b == 0 || ns < best_ns) best_ns = ns;
  }
  std::printf("[bench] %-32s %12.0f ns/op  (min of %d x %d reps)\n",
              name.c_str(), best_ns, batches, per_batch);
  return BenchRow{name, best_ns, batches * per_batch};
}

/// Fixed arithmetic loop whose ns/op acts as the machine-speed yardstick:
/// bench_diff divides both snapshots' timings by their own calibration
/// before comparing, so baseline and candidate need not share hardware.
double run_calibration() {
  volatile double sink = 0.0;
  const auto body = [&](int) {
    double x = 1.0;
    for (int i = 1; i <= 2000; ++i) {
      x = x * 0.999999 + 1.0 / static_cast<double>(i);
    }
    sink = sink + x;
  };
  return time_bench("calibration", 2000, body).ns_per_op;
}

enum class KernelMode { Dense, SparseCold, SparseWarm };

/// Repeated characterization of a fixed topology with a walking parameter —
/// the RL trajectory workload, same shape as bench_micro_sim's
/// repeated_characterization (dense rebuild vs sparse pattern reuse vs
/// warm-started Newton).
BenchRow two_stage_characterize(const std::string& name, KernelMode mode,
                                int reps) {
  const auto card = spice::TechCard::ptm45();
  eval::OpHint hint;
  return time_bench(name, reps, [&](int i) {
    circuits::TwoStageParams p;
    p.w12 = (10.0 + 0.25 * (i % 8)) * 1e-6;  // +-1-grid-step walk
    circuits::OpampBuildOptions opt;
    opt.kernel = mode == KernelMode::Dense ? spice::SimKernel::Dense
                                           : spice::SimKernel::Sparse;
    opt.hint = mode == KernelMode::SparseWarm ? &hint : nullptr;
    if (!circuits::simulate_two_stage(p, card, opt).ok()) {
      std::fprintf(stderr, "[bench] two-stage characterization failed\n");
      std::exit(2);
    }
  });
}

BenchRow tia_characterize_warm(int reps) {
  const auto card = spice::TechCard::ptm45();
  eval::OpHint hint;
  return time_bench("tia_characterize_sparse_warm", reps, [&](int i) {
    circuits::TiaParams p;
    p.mn = 8 + (i % 4);
    circuits::TiaBuildOptions opt;
    opt.kernel = spice::SimKernel::Sparse;
    opt.hint = &hint;
    if (!circuits::simulate_tia(p, card, opt).ok()) {
      std::fprintf(stderr, "[bench] tia characterization failed\n");
      std::exit(2);
    }
  });
}

/// Batched characterization at `lanes` lanes, reported as ns PER DESIGN so
/// the row reads directly against its scalar `..._sparse_warm` counterpart:
/// the batch-kernel speedup is the ratio of the two rows.
BenchRow two_stage_characterize_batch(int lanes, int reps) {
  const auto card = spice::TechCard::ptm45();
  std::vector<eval::OpHint> hints(static_cast<std::size_t>(lanes));
  std::vector<eval::OpHint*> hint_ptrs;
  for (auto& h : hints) hint_ptrs.push_back(&h);
  std::vector<circuits::TwoStageParams> params(
      static_cast<std::size_t>(lanes));
  BenchRow row = time_bench(
      "two_stage_characterize_batch" + std::to_string(lanes), reps,
      [&](int i) {
        for (int l = 0; l < lanes; ++l) {
          params[static_cast<std::size_t>(l)].w12 =
              (10.0 + 0.25 * ((i + l) % 8)) * 1e-6;
        }
        for (const auto& r :
             circuits::simulate_two_stage_batch(params, card, {}, hint_ptrs)) {
          if (!r.ok()) {
            std::fprintf(stderr, "[bench] batched two-stage failed\n");
            std::exit(2);
          }
        }
      });
  row.ns_per_op /= static_cast<double>(lanes);  // per design, not per batch
  return row;
}

BenchRow tia_characterize_batch(int lanes, int reps) {
  const auto card = spice::TechCard::ptm45();
  std::vector<eval::OpHint> hints(static_cast<std::size_t>(lanes));
  std::vector<eval::OpHint*> hint_ptrs;
  for (auto& h : hints) hint_ptrs.push_back(&h);
  std::vector<circuits::TiaParams> params(static_cast<std::size_t>(lanes));
  BenchRow row = time_bench(
      "tia_characterize_batch" + std::to_string(lanes), reps, [&](int i) {
        for (int l = 0; l < lanes; ++l) {
          params[static_cast<std::size_t>(l)].mn = 8 + ((i + l) % 4);
        }
        for (const auto& r :
             circuits::simulate_tia_batch(params, card, {}, hint_ptrs)) {
          if (!r.ok()) {
            std::fprintf(stderr, "[bench] batched tia failed\n");
            std::exit(2);
          }
        }
      });
  row.ns_per_op /= static_cast<double>(lanes);
  return row;
}

// ---- deterministic counter workloads ---------------------------------------
// Everything below runs with fixed seeds and single-threaded evaluation so
// that the emitted counters are reproducible run-to-run on one machine.
// (Across machines, libm rounding differences can nudge Newton iteration
// and episode counts — bench_diff's counter tolerance bands absorb that.)

using CounterRows = std::vector<std::pair<std::string, double>>;

/// Every EvalStats field except sim_seconds (wall time — that is what the
/// timed benches are for), prefixed into the flat counter namespace.
void append_eval_stats(CounterRows& rows, const std::string& prefix,
                       const eval::EvalStats& stats) {
  for (const auto& [name, value] : stats.fields()) {
    if (std::string(name) == "sim_seconds") continue;
    rows.emplace_back(prefix + name, value);
  }
}

/// Short fixed-seed synthetic PPO run (num_workers=1 keeps collection
/// inline and the simulation counts exactly reproducible).
void training_counters(CounterRows& rows) {
  std::printf("[bench] training counters (synthetic, fixed seed)...\n");
  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_synthetic_problem(3, 21));
  core::AutoCktConfig config;
  config.seed = 7;
  config.env_config.horizon = 12;
  config.train_target_count = 12;
  config.ppo.max_iterations = 3;
  config.ppo.steps_per_iteration = 300;
  config.ppo.num_workers = 1;
  config.holdout_target_count = 8;
  config.holdout_interval = 2;
  problem->reset_eval_stats();
  const auto outcome = core::train_agent(problem, config);
  rows.emplace_back("train.final_train_goal_rate",
                    outcome.history.iterations.back().goal_rate);
  rows.emplace_back("train.final_holdout_goal_rate",
                    outcome.history.final_holdout_goal_rate);
  append_eval_stats(rows, "train.", problem->eval_stats());
}

/// Warm-started sparse characterization of the TIA: the kernel counters
/// (Newton iterations, factorization split, warm-start effectiveness) for a
/// fixed 16-step parameter walk.
void kernel_counters_rows(CounterRows& rows) {
  std::printf("[bench] kernel counters (tia walk)...\n");
  const auto card = spice::TechCard::ptm45();
  spice::reset_kernel_stats();
  eval::OpHint hint;
  for (int i = 0; i < 16; ++i) {
    circuits::TiaParams p;
    p.mn = 8 + (i % 4);
    circuits::TiaBuildOptions opt;
    opt.kernel = spice::SimKernel::Sparse;
    opt.hint = &hint;
    if (!circuits::simulate_tia(p, card, opt).ok()) {
      std::fprintf(stderr, "[bench] tia counter workload failed\n");
      std::exit(2);
    }
  }
  const spice::KernelStats k = spice::kernel_stats_snapshot();
  rows.emplace_back("kernel.newton_iterations", k.newton_iterations);
  rows.emplace_back("kernel.symbolic_factorizations",
                    k.symbolic_factorizations);
  rows.emplace_back("kernel.numeric_factorizations", k.numeric_factorizations);
  rows.emplace_back("kernel.dense_fallbacks", k.dense_fallbacks);
  rows.emplace_back("kernel.warm_start_attempts", k.warm_start_attempts);
  rows.emplace_back("kernel.warm_start_hits", k.warm_start_hits);
  const double warm_rate =
      k.warm_start_attempts == 0
          ? 0.0
          : static_cast<double>(k.warm_start_hits) /
                static_cast<double>(k.warm_start_attempts);
  rows.emplace_back("kernel.warm_start_hit_rate", warm_rate);
}

/// Memoization effectiveness on a fixed revisit pattern (5 evaluations of
/// 2 distinct points through the factory-default cached stack).
void cache_counters(CounterRows& rows) {
  std::printf("[bench] cache counters (tia revisit pattern)...\n");
  const auto prob = circuits::make_tia_problem();
  prob.reset_eval_stats();
  const auto center = prob.center_params();
  auto neighbor = center;
  neighbor[0] += 1;
  const circuits::ParamVector* pts[] = {&center, &neighbor, &center, &center,
                                        &neighbor};
  for (const auto* p : pts) {
    if (!prob.evaluate(*p).ok()) {
      std::fprintf(stderr, "[bench] cache counter workload failed\n");
      std::exit(2);
    }
  }
  const eval::EvalStats stats = prob.eval_stats();
  rows.emplace_back("cache.simulations", stats.simulations);
  rows.emplace_back("cache.cache_hits", stats.cache_hits);
  rows.emplace_back("cache.cache_misses", stats.cache_misses);
  rows.emplace_back("cache.cache_hit_rate", stats.cache_hit_rate());
}

/// Trace-layer integration check: a traced evaluation loop must produce a
/// fixed record count. Only emitted when the recorder is compiled in —
/// snapshots from -DAUTOCKT_TRACE=OFF builds are not comparable against a
/// trace-on baseline (bench_diff treats the missing counters as a failure,
/// which is the correct loud answer).
void trace_counters(CounterRows& rows) {
  if (!trace::compiled_in()) {
    std::printf("[bench] trace counters skipped (compiled out)\n");
    return;
  }
  std::printf("[bench] trace counters (traced eval loop)...\n");
  const auto prob = circuits::make_tia_problem(raw_options());
  const auto center = prob.center_params();
  prob.evaluate(center).ok();  // warm the thread-local workspace first
  auto& rec = trace::recorder();
  rec.reset();
  rec.set_enabled(true);
  for (int i = 0; i < 4; ++i) prob.evaluate(center).ok();
  rec.set_enabled(false);
  const auto counts = rec.counts_by_name();
  long total = 0;
  for (const auto& [name, n] : counts) total += n;
  rows.emplace_back("trace.records_total", static_cast<double>(total));
  const auto it = counts.find(trace::names::kEvalSimulate);
  const double simulate_records =
      it == counts.end() ? 0.0 : static_cast<double>(it->second);
  rows.emplace_back("trace.eval_simulate_records", simulate_records);
  rec.reset();
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::string out_path = args.get("out", "BENCH_local.json");
  const std::string label = args.get("label", "local");
  const std::string sha = args.get("sha", "unknown");
  const double scale = args.get_double("reps-scale", 1.0);
  const auto reps = [&](int base) {
    const int r = static_cast<int>(static_cast<double>(base) * scale);
    return r < 1 ? 1 : r;
  };

  const double calibration = run_calibration();

  std::vector<BenchRow> benches;
  benches.push_back(two_stage_characterize("two_stage_characterize_dense",
                                           KernelMode::Dense, reps(12)));
  benches.push_back(two_stage_characterize("two_stage_characterize_cold",
                                           KernelMode::SparseCold, reps(12)));
  benches.push_back(two_stage_characterize("two_stage_characterize_warm",
                                           KernelMode::SparseWarm, reps(12)));
  benches.push_back(tia_characterize_warm(reps(24)));
  // Per-design rows; compare against the *_sparse_warm rows above for the
  // batched-kernel speedup (the PR 9 acceptance bar is >= 2x at 16 lanes).
  benches.push_back(two_stage_characterize_batch(16, reps(4)));
  benches.push_back(tia_characterize_batch(16, reps(4)));

  {
    const auto prob = circuits::make_tia_problem(raw_options());
    const auto center = prob.center_params();
    benches.push_back(time_bench("full_eval_tia", reps(24),
                                 [&](int) { prob.evaluate(center).ok(); }));
  }
  {
    const auto prob = circuits::make_tia_problem();  // factory default: cached
    const auto center = prob.center_params();
    prob.evaluate(center).ok();  // populate the memo entry once
    benches.push_back(time_bench("eval_cache_hit", reps(4000),
                                 [&](int) { prob.evaluate(center).ok(); }));
  }
  {
    auto problem = std::make_shared<const circuits::SizingProblem>(
        circuits::make_synthetic_problem(3, 21));
    env::EnvConfig env_config;
    env_config.horizon = 25;
    env::VectorSizingEnv venv(problem, env_config, 8);
    venv.reset_all();
    const std::vector<std::vector<int>> actions(
        8, std::vector<int>(static_cast<std::size_t>(venv.num_params()), 2));
    benches.push_back(
        time_bench("vector_env_tick", reps(400),
                   [&](int) { venv.step_all(actions); }));
  }
  {
    auto problem = std::make_shared<const circuits::SizingProblem>(
        circuits::make_synthetic_problem(3, 21));
    spec::UniformSampler sampler{spec::SpecSpace(*problem)};
    util::Rng rng(11);
    benches.push_back(time_bench("spec_sample_uniform", reps(20000),
                                 [&](int) { sampler.sample(rng); }));
  }

  CounterRows counters;
  training_counters(counters);
  kernel_counters_rows(counters);
  cache_counters(counters);
  trace_counters(counters);

  std::ostringstream json;
  json << "{\n  \"schema\": \"autockt-bench-v1\",\n  \"context\": {\n";
  json << "    \"label\": \"" << json_escape(label) << "\",\n";
  json << "    \"git_sha\": \"" << json_escape(sha) << "\",\n";
  const char* host = std::getenv("HOSTNAME");
  json << "    \"host\": \"" << json_escape(host ? host : "unknown")
       << "\",\n";
  json << "    \"cores\": " << std::thread::hardware_concurrency() << ",\n";
  json << "    \"compiler\": \"" << json_escape(__VERSION__) << "\",\n";
#ifdef NDEBUG
  json << "    \"build\": \"release\",\n";
#else
  json << "    \"build\": \"debug\",\n";
#endif
  json << "    \"trace_compiled\": "
       << (trace::compiled_in() ? "true" : "false") << "\n  },\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", calibration);
  json << "  \"calibration_ns_per_op\": " << buf << ",\n";
  json << "  \"benches\": {\n";
  for (std::size_t i = 0; i < benches.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.3f", benches[i].ns_per_op);
    json << "    \"" << benches[i].name << "\": {\"ns_per_op\": " << buf
         << ", \"reps\": " << benches[i].reps << "}"
         << (i + 1 < benches.size() ? "," : "") << "\n";
  }
  json << "  },\n  \"counters\": {\n";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.6f", counters[i].second);
    json << "    \"" << counters[i].first << "\": " << buf
         << (i + 1 < counters.size() ? "," : "") << "\n";
  }
  json << "  }\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "[bench] cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json.str();
  std::printf("[bench] wrote %s (%zu benches, %zu counters)\n",
              out_path.c_str(), benches.size(), counters.size());
  return 0;
}
