// Micro-benchmarks for the vectorized rollout engine: environment steps per
// second for one serial SizingEnv versus a VectorSizingEnv at 1/4/16/64
// lockstep lanes, over the two backend stacks that matter on the training
// hot path — the sharded memo cache (repeat visits are free) and the
// thread-pool fan-out (fresh points simulate concurrently). Every vector
// tick is one batched policy forward (Mlp::forward_batch) plus one
// evaluate_batch(), which is exactly what PPO collection and deployment now
// pay per step.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "circuits/problems.hpp"
#include "env/vector_env.hpp"
#include "rl/ppo.hpp"
#include "util/rng.hpp"

using namespace autockt;

namespace {

enum class Stack { Cached, ThreadPool, ScalarKernel };

std::shared_ptr<const circuits::SizingProblem> tia(Stack stack) {
  circuits::ProblemOptions options;
  if (stack == Stack::ThreadPool) {
    options.cache = false;  // isolate fan-out gain from cache effects
  } else if (stack == Stack::ScalarKernel) {
    // The A/B reference for the batched numeric kernel: same stack as
    // ThreadPool but evaluate_batch() loops the scalar simulator instead
    // of running lanes through SparseLuNumericBatch.
    options.cache = false;
    options.batch_kernel = false;
  }
  return std::make_shared<const circuits::SizingProblem>(
      circuits::make_tia_problem(options));
}

/// A target no TIA design can meet, so episodes always run to the horizon
/// and the measured steps are never cut short by goal termination.
circuits::SpecVector unreachable_target(const circuits::SizingProblem& prob) {
  circuits::SpecVector t;
  for (const auto& spec : prob.specs) {
    t.push_back(spec.sense == circuits::SpecSense::GreaterEq ? 1e18 : -1e18);
  }
  return t;
}

rl::PpoAgent make_agent(const env::SizingEnv& probe) {
  return rl::PpoAgent(probe.obs_size(), probe.num_params(), rl::PpoConfig{});
}

}  // namespace

// ---- serial baseline: one env, one policy forward, one evaluate() ----------

static void BM_SerialEnvSteps(benchmark::State& state, Stack stack) {
  auto prob = tia(stack);
  env::SizingEnv sizing_env(prob, env::EnvConfig{});
  sizing_env.set_target(unreachable_target(*prob));
  util::Rng rng(1);
  rl::PpoAgent agent = make_agent(sizing_env);
  std::vector<double> obs = sizing_env.reset();
  for (auto _ : state) {
    const auto action = agent.act_sample(obs, rng);
    auto sr = sizing_env.step(action);
    if (sr.done) {
      obs = sizing_env.reset();
    } else {
      obs = std::move(sr.obs);
    }
    benchmark::DoNotOptimize(obs.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_SerialEnvSteps, cached, Stack::Cached);
BENCHMARK_CAPTURE(BM_SerialEnvSteps, pool, Stack::ThreadPool);

// ---- vectorized: N lanes, batched forward, one evaluate_batch per tick -----

static void BM_VectorEnvSteps(benchmark::State& state, Stack stack) {
  const int lanes = static_cast<int>(state.range(0));
  auto prob = tia(stack);
  env::VectorSizingEnv venv(prob, env::EnvConfig{}, lanes);
  venv.seed_lanes(1);
  const auto target = unreachable_target(*prob);
  venv.set_target_sampler(
      [&target](int, util::Rng&) { return target; });
  rl::PpoAgent agent = make_agent(venv.lane(0));

  std::vector<std::vector<double>> obs = venv.reset_all();
  const std::size_t obs_width = static_cast<std::size_t>(venv.obs_size());
  const int num_params = venv.num_params();
  std::vector<double> rows(static_cast<std::size_t>(lanes) * obs_width);
  std::vector<util::Rng*> rngs;
  for (int i = 0; i < lanes; ++i) rngs.push_back(&venv.lane_rng(i));
  std::vector<std::vector<int>> actions(static_cast<std::size_t>(lanes));

  for (auto _ : state) {
    for (int i = 0; i < lanes; ++i) {
      std::copy(obs[static_cast<std::size_t>(i)].begin(),
                obs[static_cast<std::size_t>(i)].end(),
                rows.begin() + static_cast<std::size_t>(i) * obs_width);
    }
    const auto acts = agent.act_sample_batch(rows, lanes, rngs);
    for (int i = 0; i < lanes; ++i) {
      actions[static_cast<std::size_t>(i)].assign(
          acts.begin() + static_cast<std::size_t>(i * num_params),
          acts.begin() + static_cast<std::size_t>((i + 1) * num_params));
    }
    const auto results = venv.step_all(actions);  // auto-reset at horizon
    for (int i = 0; i < lanes; ++i) {
      obs[static_cast<std::size_t>(i)] =
          results[static_cast<std::size_t>(i)].obs;
    }
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * lanes);
}
BENCHMARK_CAPTURE(BM_VectorEnvSteps, cached, Stack::Cached)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);
BENCHMARK_CAPTURE(BM_VectorEnvSteps, pool, Stack::ThreadPool)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);
BENCHMARK_CAPTURE(BM_VectorEnvSteps, scalar_kernel, Stack::ScalarKernel)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);

// ---- isolated batched policy inference (the non-simulation half) -----------

static void BM_PolicyForwardBatch(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  rl::PpoConfig config;
  rl::PpoAgent agent(18, 7, config);
  util::Rng rng(3);
  std::vector<double> obs_rows(static_cast<std::size_t>(rows) * 18);
  for (double& v : obs_rows) v = rng.uniform(-1.0, 1.0);
  std::vector<util::Rng> streams(static_cast<std::size_t>(rows),
                                 util::Rng(5));
  std::vector<util::Rng*> rngs;
  for (auto& s : streams) rngs.push_back(&s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        agent.act_sample_batch(obs_rows, rows, rngs).data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_PolicyForwardBatch)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

BENCHMARK_MAIN();
