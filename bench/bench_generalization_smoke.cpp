// Generalization smoke for CI: a short PPO run on the cheap synthetic
// problem, training on a sampled target suite while probing a frozen
// holdout suite, then a final train-vs-holdout deployment scorecard. Emits
// a small JSON record alongside the micro-bench artifacts so the CI run
// history carries both goal-met rates per commit.
//
// Usage: bench_generalization_smoke [--iterations=N] [--steps=N] [--seed=S]
//                                   [--holdout=N] [--out=path.json]

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "autockt/autockt.hpp"
#include "circuits/synthetic.hpp"
#include "util/cli.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_synthetic_problem(3, 21));

  core::AutoCktConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  config.env_config.horizon = 15;
  config.train_target_count = 20;
  config.ppo.max_iterations = static_cast<int>(args.get_int("iterations", 12));
  config.ppo.steps_per_iteration = static_cast<int>(args.get_int("steps", 600));
  config.ppo.num_workers = 2;
  config.holdout_target_count =
      static_cast<std::size_t>(args.get_int("holdout", 20));
  config.holdout_interval = 3;

  std::printf("[smoke] training on %s (%d iterations x %d steps)\n",
              problem->name.c_str(), config.ppo.max_iterations,
              config.ppo.steps_per_iteration);
  auto outcome =
      core::train_agent(problem, config, [](const rl::IterationStats& s) {
        std::printf("[smoke] iter %2d  train goal rate %.3f  holdout %s\n",
                    s.iteration, s.goal_rate,
                    s.holdout_evaluated
                        ? std::to_string(s.holdout_goal_rate).c_str()
                        : "-");
      });

  const auto report = core::evaluate_generalization(
      outcome.agent, problem, outcome.train_suite, outcome.holdout_suite,
      config.env_config);
  std::printf("[smoke] deploy: train %.3f  holdout %.3f  gap %.3f\n",
              report.train_goal_rate(), report.holdout_goal_rate(),
              report.gap());

  if (outcome.history.iterations.empty()) {
    std::fprintf(stderr, "[smoke] FAIL: no training iterations ran\n");
    return 1;
  }
  const auto& last = outcome.history.iterations.back();
  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"name\": \"generalization_smoke\",\n"
      "  \"problem\": \"%s\",\n"
      "  \"iterations\": %zu,\n"
      "  \"train_targets\": %zu,\n"
      "  \"holdout_targets\": %zu,\n"
      "  \"final_train_goal_rate\": %.6f,\n"
      "  \"final_holdout_goal_rate\": %.6f,\n"
      "  \"deploy_train_goal_rate\": %.6f,\n"
      "  \"deploy_holdout_goal_rate\": %.6f,\n"
      "  \"generalization_gap\": %.6f\n"
      "}\n",
      problem->name.c_str(), outcome.history.iterations.size(),
      outcome.train_suite.size(), outcome.holdout_suite.size(),
      last.goal_rate, outcome.history.final_holdout_goal_rate,
      report.train_goal_rate(), report.holdout_goal_rate(), report.gap());
  std::fputs(json, stdout);

  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "[smoke] cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json;
    std::printf("[smoke] wrote %s\n", out_path.c_str());
  }

  // Smoke criterion: the probe ran and produced sane rates.
  if (outcome.history.final_holdout_goal_rate < 0.0) {
    std::fprintf(stderr, "[smoke] FAIL: holdout probe never ran\n");
    return 1;
  }
  return 0;
}
