// Figure 10: trajectory-length optimization for the negative-gm OTA. The
// paper sweeps the maximum trajectory length H and picks the one that
// maximizes deployment quality. This bench retrains a (reduced-budget)
// agent per horizon and reports deployment success and sample efficiency,
// plus the sparse-reward ablation from docs/DESIGN.md section 5 when
// --ablate-reward is passed.

#include "bench_common.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parse_scale(argc, argv);
  util::CliArgs args(argc, argv);
  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_ngm_problem());
  core::print_experiment_header(
      "Figure 10", "Trajectory-length optimization (negative-gm OTA)",
      *problem);

  const bool ablate_reward = args.get_bool("ablate-reward");
  std::vector<int> horizons = scale.quick ? std::vector<int>{10, 30, 50}
                                          : std::vector<int>{10, 20, 30, 40,
                                                             50, 60};

  util::Table table({"horizon H", "train goal rate", "deploy reached",
                     "deploy avg steps"});
  util::CsvWriter csv({"horizon", "train_goal_rate", "deploy_reached_frac",
                       "deploy_avg_steps"});

  const auto n_deploy = static_cast<std::size_t>(
      args.get_int("deploy", scale.quick ? 60 : 150));

  for (int horizon : horizons) {
    core::AutoCktConfig config = bench::training_config(problem->name, scale);
    config.env_config.horizon = horizon;
    config.env_config.eq1_shaping = !ablate_reward;
    // Reduced budget per sweep point: the comparison across H is the
    // point, not absolute quality.
    config.ppo.max_iterations = scale.quick ? 8 : 25;

    auto outcome = core::train_agent(problem, config);
    const double train_goal_rate =
        outcome.history.iterations.empty()
            ? 0.0
            : outcome.history.iterations.back().goal_rate;

    util::Rng rng(scale.seed + 1);
    const auto targets = env::sample_targets(*problem, n_deploy, rng);
    const auto stats =
        core::deploy_agent(outcome.agent, problem, targets,
                           config.env_config);

    table.add_row({std::to_string(horizon),
                   util::Table::num(train_goal_rate),
                   std::to_string(stats.reached_count()) + "/" +
                       std::to_string(stats.total()),
                   util::Table::num(stats.avg_steps_reached())});
    csv.add_row({static_cast<double>(horizon), train_goal_rate,
                 stats.reach_fraction(), stats.avg_steps_reached()});
    std::printf("  H=%d done\n", horizon);
    std::fflush(stdout);
  }

  std::printf("\n");
  table.print();
  if (csv.save("fig10_trajectory_length.csv")) {
    std::printf("[bench] wrote fig10_trajectory_length.csv\n");
  }
  std::printf("\npaper shape: too-short horizons cannot reach targets; "
              "quality saturates once H covers the needed walk length.\n");
  if (ablate_reward) {
    std::printf("(sparse-reward ablation active: compare against the "
                "default run to see the value of Eq. 1 shaping)\n");
  }
  return 0;
}
