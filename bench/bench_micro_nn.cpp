// Micro-benchmarks for the neural-network stack: policy inference (what
// every environment step pays) and the forward/backward training pass.

#include <benchmark/benchmark.h>

#include "nn/mlp.hpp"
#include "rl/ppo.hpp"
#include "util/rng.hpp"

using namespace autockt;

namespace {
std::vector<double> random_obs(int n, util::Rng& rng) {
  std::vector<double> x(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}
}  // namespace

static void BM_MlpForward(benchmark::State& state) {
  nn::Mlp mlp({18, 50, 50, 50, 21}, nn::Activation::Tanh, 1);
  util::Rng rng(2);
  const auto x = random_obs(18, rng);
  for (auto _ : state) benchmark::DoNotOptimize(mlp.forward(x));
}
BENCHMARK(BM_MlpForward);

static void BM_MlpForwardBackward(benchmark::State& state) {
  nn::Mlp mlp({18, 50, 50, 50, 21}, nn::Activation::Tanh, 1);
  util::Rng rng(2);
  const auto x = random_obs(18, rng);
  std::vector<double> dy(21, 0.1);
  for (auto _ : state) {
    auto trace = mlp.forward_trace(x);
    benchmark::DoNotOptimize(mlp.backward(trace, dy));
  }
}
BENCHMARK(BM_MlpForwardBackward);

static void BM_PolicyActSample(benchmark::State& state) {
  rl::PpoConfig config;
  rl::PpoAgent agent(18, 7, config);
  util::Rng rng(3);
  const auto obs = random_obs(18, rng);
  for (auto _ : state) benchmark::DoNotOptimize(agent.act_sample(obs, rng));
}
BENCHMARK(BM_PolicyActSample);

static void BM_AdamStep(benchmark::State& state) {
  nn::Mlp mlp({18, 50, 50, 50, 21}, nn::Activation::Tanh, 1);
  nn::Adam adam(mlp.param_count(), 3e-4);
  std::vector<double> grads(mlp.param_count(), 1e-3);
  for (auto _ : state) adam.step(mlp.params(), grads);
}
BENCHMARK(BM_AdamStep);

BENCHMARK_MAIN();
