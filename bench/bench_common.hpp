#pragma once
// Shared scaffolding for the experiment benches (one binary per paper table
// or figure). Provides:
//  * frozen per-problem training configurations (the calibrated settings
//    documented in docs/EXPERIMENTS.md),
//  * an agent cache so benches that share a topology don't retrain (the
//    figure benches train and save; the table benches reuse),
//  * uniform --quick / --seed handling.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "autockt/autockt.hpp"
#include "autockt/experiments.hpp"
#include "circuits/problems.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace autockt::bench {

struct BenchScale {
  bool quick = false;
  std::uint64_t seed = 7;
};

inline BenchScale parse_scale(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  BenchScale s;
  s.quick = args.get_bool("quick");
  s.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  return s;
}

/// Calibrated training configuration per problem (see docs/EXPERIMENTS.md).
inline core::AutoCktConfig training_config(const std::string& problem_name,
                                           const BenchScale& scale) {
  core::AutoCktConfig config;
  config.seed = scale.seed;
  if (problem_name == "tia") {
    config.env_config.horizon = 30;
    config.ppo.steps_per_iteration = 1200;
    config.ppo.max_iterations = scale.quick ? 15 : 110;
    config.ppo.entropy_coef = 0.008;
  } else if (problem_name == "two_stage_opamp") {
    config.env_config.horizon = 45;
    config.ppo.steps_per_iteration = 2000;
    config.ppo.max_iterations = scale.quick ? 15 : 90;
    config.ppo.entropy_coef = 0.01;
  } else {  // ngm_ota (schematic and pex share the agent)
    config.env_config.horizon = 40;
    config.ppo.steps_per_iteration = 1500;
    config.ppo.max_iterations = scale.quick ? 12 : 60;
    config.ppo.entropy_coef = 0.008;
  }
  config.ppo.target_mean_reward = 9.3;
  config.ppo.target_goal_rate = 0.99;
  config.ppo.stop_patience = 2;
  return config;
}

inline std::string agent_cache_path(const std::string& problem_name,
                                    const BenchScale& scale) {
  return "autockt_agent_" + problem_name + (scale.quick ? "_quick" : "") +
         "_seed" + std::to_string(scale.seed) + ".txt";
}

/// Load a cached agent if present; otherwise train and cache it. When
/// `history_out` is non-null the caller needs the training curve, so a
/// cache hit is only honoured for the network weights — curve benches pass
/// `force_train = true`.
inline core::TrainOutcome get_or_train_agent(
    std::shared_ptr<const circuits::SizingProblem> problem,
    const BenchScale& scale, bool force_train = false,
    const std::function<void(const rl::IterationStats&)>& on_iter = {}) {
  const core::AutoCktConfig config = training_config(problem->name, scale);
  // The PEX problem reuses the schematic-trained agent (transfer learning).
  const std::string cache_key =
      problem->name == "ngm_ota_pex" ? "ngm_ota" : problem->name;
  const std::string path = agent_cache_path(cache_key, scale);

  if (!force_train) {
    std::ifstream in(path);
    if (in) {
      std::printf("[bench] loading cached agent from %s\n", path.c_str());
      core::TrainOutcome outcome{rl::PpoAgent::load(in), {}, {}, {}, {}};
      return outcome;
    }
  }
  std::printf("[bench] training agent for %s (this is the expensive part; "
              "later benches reuse %s)\n",
              cache_key.c_str(), path.c_str());
  auto train_problem = problem;
  if (problem->name == "ngm_ota_pex") {
    train_problem = std::make_shared<const circuits::SizingProblem>(
        circuits::make_ngm_problem());
  }
  auto outcome = core::train_agent(train_problem, config, on_iter);
  std::ofstream out(path);
  outcome.agent.save(out);
  return outcome;
}

/// Console printer for a training curve (figure benches).
inline void print_training_curve(const rl::TrainHistory& history) {
  util::Table table({"iteration", "env_steps", "mean_episode_reward",
                     "goal_rate", "mean_episode_len"});
  for (const auto& it : history.iterations) {
    table.add_row({std::to_string(it.iteration),
                   std::to_string(it.cumulative_env_steps),
                   util::Table::num(it.mean_episode_reward),
                   util::Table::num(it.goal_rate),
                   util::Table::num(it.mean_episode_len)});
  }
  table.print();
}

inline void save_training_curve_csv(const rl::TrainHistory& history,
                                    const std::string& path) {
  util::CsvWriter csv({"iteration", "env_steps", "mean_episode_reward",
                       "goal_rate", "mean_episode_len", "entropy"});
  for (const auto& it : history.iterations) {
    csv.add_row({static_cast<double>(it.iteration),
                 static_cast<double>(it.cumulative_env_steps),
                 it.mean_episode_reward, it.goal_rate, it.mean_episode_len,
                 it.entropy});
  }
  if (csv.save(path)) std::printf("[bench] wrote %s\n", path.c_str());
}

}  // namespace autockt::bench
