// Micro-benchmarks for the simulator substrate: LU solves, DC operating
// points, AC sweeps, and full problem evaluations. Not a paper experiment —
// these bound the wall-clock of everything else (one RL environment step is
// one full evaluation).

#include <benchmark/benchmark.h>

#include "circuits/ngm_ota.hpp"
#include "circuits/problems.hpp"
#include "circuits/tia.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "linalg/lu.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "util/rng.hpp"

using namespace autockt;

/// Full-eval benches measure the raw simulator: strip the memo cache and
/// fan-out layers the factories add by default (bench_micro_eval_cache
/// measures those).
static circuits::ProblemOptions raw_options() {
  circuits::ProblemOptions options;
  options.cache = false;
  options.parallel_batch = false;
  options.parallel_corners = false;
  return options;
}

static void BM_LuSolveReal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  linalg::RealMatrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);  // diagonally dominant
    b[r] = rng.uniform(-1.0, 1.0);
  }
  for (auto _ : state) {
    linalg::LuFactorization<double> lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_LuSolveReal)->Arg(8)->Arg(16)->Arg(32);

static void BM_TwoStageDcOp(benchmark::State& state) {
  const auto card = spice::TechCard::ptm45();
  const circuits::TwoStageParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuits::simulate_two_stage(params, card).ok());
  }
}
BENCHMARK(BM_TwoStageDcOp);

static void BM_FullEval_Tia(benchmark::State& state) {
  const auto prob = circuits::make_tia_problem(raw_options());
  const auto center = prob.center_params();
  for (auto _ : state) benchmark::DoNotOptimize(prob.evaluate(center).ok());
}
BENCHMARK(BM_FullEval_Tia);

static void BM_FullEval_TwoStage(benchmark::State& state) {
  const auto prob = circuits::make_two_stage_problem(raw_options());
  const auto center = prob.center_params();
  for (auto _ : state) benchmark::DoNotOptimize(prob.evaluate(center).ok());
}
BENCHMARK(BM_FullEval_TwoStage);

static void BM_FullEval_Ngm(benchmark::State& state) {
  const auto prob = circuits::make_ngm_problem(raw_options());
  const auto center = prob.center_params();
  for (auto _ : state) benchmark::DoNotOptimize(prob.evaluate(center).ok());
}
BENCHMARK(BM_FullEval_Ngm);

static void BM_FullEval_NgmPex(benchmark::State& state) {
  const auto prob = circuits::make_ngm_pex_problem(raw_options());
  const auto center = prob.center_params();
  for (auto _ : state) benchmark::DoNotOptimize(prob.evaluate(center).ok());
}
BENCHMARK(BM_FullEval_NgmPex);

BENCHMARK_MAIN();
