// Micro-benchmarks for the simulator substrate: LU solves, DC operating
// points, AC sweeps, and full problem evaluations — plus the simulation
// kernel comparisons the CI bench-smoke step archives as JSON: the legacy
// dense kernel vs the pattern-cached sparse kernel (cold) vs the sparse
// kernel with env-style warm-started Newton, over repeated characterization
// of a fixed topology (exactly the RL trajectory workload). Not a paper
// experiment — these bound the wall-clock of everything else (one RL
// environment step is one full evaluation).
//
// JSON: pass --benchmark_out=<file> --benchmark_out_format=json (what CI's
// bench-smoke step does).

#include <benchmark/benchmark.h>

#include "circuits/ngm_ota.hpp"
#include "circuits/problems.hpp"
#include "circuits/tia.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "eval/types.hpp"
#include "linalg/lu.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/workspace.hpp"
#include "util/rng.hpp"

using namespace autockt;

/// Full-eval benches measure the raw simulator: strip the memo cache and
/// fan-out layers the factories add by default (bench_micro_eval_cache
/// measures those).
static circuits::ProblemOptions raw_options() {
  circuits::ProblemOptions options;
  options.cache = false;
  options.parallel_batch = false;
  options.parallel_corners = false;
  return options;
}

static void BM_LuSolveReal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  linalg::RealMatrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);  // diagonally dominant
    b[r] = rng.uniform(-1.0, 1.0);
  }
  for (auto _ : state) {
    linalg::LuFactorization<double> lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_LuSolveReal)->Arg(8)->Arg(16)->Arg(32);

static void BM_TwoStageDcOp(benchmark::State& state) {
  const auto card = spice::TechCard::ptm45();
  const circuits::TwoStageParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuits::simulate_two_stage(params, card).ok());
  }
}
BENCHMARK(BM_TwoStageDcOp);

// ---- dense vs sparse vs warm-started sparse kernel --------------------------
// Repeated characterization of a FIXED topology with a slowly walking width
// — the RL rollout workload. Dense rebuilds and re-pivots everything per
// evaluation; the sparse kernel reuses one symbolic factorization per
// topology; the warm variant additionally seeds Newton with the previous
// design's operating point, like a SizingEnv step does. The acceptance bar
// for the kernel refactor is sparse-warm >= 2x dense on the two-stage.

namespace {

enum class KernelMode { Dense, SparseCold, SparseWarm };

template <typename Params, typename Build, typename Sim>
void repeated_characterization(benchmark::State& state, KernelMode mode,
                               Params params, Build&& perturb, Sim&& sim) {
  eval::OpHint hint;
  int i = 0;
  for (auto _ : state) {
    Params p = params;
    perturb(p, i++);
    typename std::remove_reference_t<Sim>::Options opt;
    opt.kernel = mode == KernelMode::Dense ? spice::SimKernel::Dense
                                           : spice::SimKernel::Sparse;
    opt.hint = mode == KernelMode::SparseWarm ? &hint : nullptr;
    benchmark::DoNotOptimize(sim.run(p, opt));
  }
}

struct TwoStageSim {
  using Options = circuits::OpampBuildOptions;
  spice::TechCard card = spice::TechCard::ptm45();
  bool run(const circuits::TwoStageParams& p, const Options& opt) const {
    return circuits::simulate_two_stage(p, card, opt).ok();
  }
};

struct TiaSim {
  using Options = circuits::TiaBuildOptions;
  spice::TechCard card = spice::TechCard::ptm45();
  bool run(const circuits::TiaParams& p, const Options& opt) const {
    return circuits::simulate_tia(p, card, opt).ok();
  }
};

KernelMode mode_of(const benchmark::State& state) {
  switch (state.range(0)) {
    case 0: return KernelMode::Dense;
    case 1: return KernelMode::SparseCold;
    default: return KernelMode::SparseWarm;
  }
}

}  // namespace

/// Arg 0: 0 = dense kernel, 1 = sparse cold-start, 2 = sparse warm-start.
static void BM_TwoStageCharacterize_Kernel(benchmark::State& state) {
  repeated_characterization(
      state, mode_of(state), circuits::TwoStageParams{},
      [](circuits::TwoStageParams& p, int i) {
        p.w12 = (10.0 + 0.25 * (i % 8)) * 1e-6;  // +-1-grid-step walk
      },
      TwoStageSim{});
}
BENCHMARK(BM_TwoStageCharacterize_Kernel)->Arg(0)->Arg(1)->Arg(2);

static void BM_TiaCharacterize_Kernel(benchmark::State& state) {
  repeated_characterization(
      state, mode_of(state), circuits::TiaParams{},
      [](circuits::TiaParams& p, int i) { p.mn = 8 + (i % 4); },
      TiaSim{});
}
BENCHMARK(BM_TiaCharacterize_Kernel)->Arg(0)->Arg(1)->Arg(2);

// ---- batched characterization: K lanes through SparseLuNumericBatch --------
// Items/sec counts DESIGNS, so these read directly against the scalar
// sparse-warm rows above: the batch win is the items/sec ratio. Arg is the
// lane count.

static void BM_TwoStageCharacterize_Batch(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  const spice::TechCard card = spice::TechCard::ptm45();
  std::vector<eval::OpHint> hints(static_cast<std::size_t>(lanes));
  std::vector<eval::OpHint*> hint_ptrs;
  for (auto& h : hints) hint_ptrs.push_back(&h);
  std::vector<circuits::TwoStageParams> params(
      static_cast<std::size_t>(lanes));
  int i = 0;
  for (auto _ : state) {
    for (int l = 0; l < lanes; ++l) {
      params[static_cast<std::size_t>(l)].w12 =
          (10.0 + 0.25 * ((i + l) % 8)) * 1e-6;
    }
    ++i;
    benchmark::DoNotOptimize(
        circuits::simulate_two_stage_batch(params, card, {}, hint_ptrs)
            .data());
  }
  state.SetItemsProcessed(state.iterations() * lanes);
}
BENCHMARK(BM_TwoStageCharacterize_Batch)->Arg(4)->Arg(16)->Arg(64);

static void BM_TiaCharacterize_Batch(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  const spice::TechCard card = spice::TechCard::ptm45();
  std::vector<eval::OpHint> hints(static_cast<std::size_t>(lanes));
  std::vector<eval::OpHint*> hint_ptrs;
  for (auto& h : hints) hint_ptrs.push_back(&h);
  std::vector<circuits::TiaParams> params(static_cast<std::size_t>(lanes));
  int i = 0;
  for (auto _ : state) {
    for (int l = 0; l < lanes; ++l) {
      params[static_cast<std::size_t>(l)].mn = 8 + ((i + l) % 4);
    }
    ++i;
    benchmark::DoNotOptimize(
        circuits::simulate_tia_batch(params, card, {}, hint_ptrs).data());
  }
  state.SetItemsProcessed(state.iterations() * lanes);
}
BENCHMARK(BM_TiaCharacterize_Batch)->Arg(4)->Arg(16)->Arg(64);

static void BM_FullEval_Tia(benchmark::State& state) {
  const auto prob = circuits::make_tia_problem(raw_options());
  const auto center = prob.center_params();
  for (auto _ : state) benchmark::DoNotOptimize(prob.evaluate(center).ok());
}
BENCHMARK(BM_FullEval_Tia);

static void BM_FullEval_TwoStage(benchmark::State& state) {
  const auto prob = circuits::make_two_stage_problem(raw_options());
  const auto center = prob.center_params();
  for (auto _ : state) benchmark::DoNotOptimize(prob.evaluate(center).ok());
}
BENCHMARK(BM_FullEval_TwoStage);

static void BM_FullEval_Ngm(benchmark::State& state) {
  const auto prob = circuits::make_ngm_problem(raw_options());
  const auto center = prob.center_params();
  for (auto _ : state) benchmark::DoNotOptimize(prob.evaluate(center).ok());
}
BENCHMARK(BM_FullEval_Ngm);

static void BM_FullEval_NgmPex(benchmark::State& state) {
  const auto prob = circuits::make_ngm_pex_problem(raw_options());
  const auto center = prob.center_params();
  for (auto _ : state) benchmark::DoNotOptimize(prob.evaluate(center).ok());
}
BENCHMARK(BM_FullEval_NgmPex);

BENCHMARK_MAIN();
