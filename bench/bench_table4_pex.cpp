// Table IV: sample efficiency with layout parasitics. Paper rows:
//   Genetic Alg.           — N/A (too sample-inefficient to run at 91 s/sim)
//   Genetic Alg.+ML [7]    — 220 simulations
//   AutoCkt schematic only — 10 simulations, 500/500
//   AutoCkt PEX (transfer) — 23 simulations, 40/40
// plus the wall-clock claims (1.7 h for deployment;  40 LVS-passed designs
// in under 3 days on one core; 9.56x more sample-efficient than [7]).

#include "baselines/ga_ml.hpp"
#include "bench_common.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parse_scale(argc, argv);
  util::CliArgs args(argc, argv);
  auto schematic = std::make_shared<const circuits::SizingProblem>(
      circuits::make_ngm_problem());
  auto pex = std::make_shared<const circuits::SizingProblem>(
      circuits::make_ngm_pex_problem());
  core::print_experiment_header(
      "Table IV", "Sample efficiency with layout parasitics (transfer)",
      *pex);

  auto outcome = bench::get_or_train_agent(schematic, scale);
  const auto config = bench::training_config(schematic->name, scale);

  // AutoCkt schematic row.
  const auto n_sch = static_cast<std::size_t>(
      args.get_int("schematic_deploy", scale.quick ? 100 : 500));
  const auto sch_suite =
      core::make_deploy_suite(*schematic, n_sch, scale.seed + 1);
  const auto sch_stats = core::deploy_agent(outcome.agent, schematic,
                                            sch_suite, config.env_config);

  // AutoCkt PEX row (paper: 40 targets). The GA+ML baseline below runs on
  // a prefix of this same suite.
  const auto n_pex =
      static_cast<std::size_t>(args.get_int("pex_deploy", 40));
  const auto pex_suite = core::make_deploy_suite(*pex, n_pex, scale.seed + 2);
  const auto& pex_targets = pex_suite.targets();
  // PEX-degraded targets sit deeper in the frontier: deploy with a longer
  // trajectory budget (the horizon is a deployment knob the paper itself
  // optimizes, Fig. 10) and allow extra sampled attempts. All simulation
  // steps are charged to the step count.
  env::EnvConfig pex_env = config.env_config;
  pex_env.horizon = static_cast<int>(args.get_int("pex_horizon", 60));
  const auto pex_stats =
      core::deploy_agent(outcome.agent, pex, pex_suite, pex_env,
                         /*stochastic=*/false, /*seed=*/scale.seed + 17,
                         /*stochastic_retries=*/3);

  // GA+ML (BagNet-like) row on the PEX problem.
  const auto n_gaml =
      static_cast<std::size_t>(
          args.get_int("gaml_targets", scale.quick ? 2 : 6));
  baselines::GaMlConfig gaml;
  gaml.ga.max_evals = 4000;
  gaml.ga.population = 30;
  double gaml_evals = 0.0;
  int gaml_reached = 0;
  for (std::size_t i = 0; i < n_gaml; ++i) {
    gaml.seed = scale.seed + 31 * (i + 1);
    const auto r = baselines::run_ga_ml(*pex, pex_targets[i], gaml);
    if (r.reached) {
      ++gaml_reached;
      gaml_evals += static_cast<double>(r.evals_to_reach);
    }
  }
  const double gaml_avg =
      gaml_reached > 0 ? gaml_evals / gaml_reached : 0.0;

  util::Table table({"metric", "paper", "measured"});
  table.add_row({"Genetic Alg.", "N/A (too many sims at 91 s/sim)", "n/a"});
  table.add_row({"Genetic Alg.+ML [7] sim steps", "220",
                 util::Table::num(gaml_avg, 3) + " (" +
                     std::to_string(gaml_reached) + "/" +
                     std::to_string(n_gaml) + " reached)"});
  table.add_row({"AutoCkt schematic-only SE", "10",
                 util::Table::num(sch_stats.avg_steps_reached(), 3) + " (" +
                     std::to_string(sch_stats.reached_count()) + "/" +
                     std::to_string(sch_stats.total()) + ")"});
  table.add_row({"AutoCkt PEX SE", "23",
                 util::Table::num(pex_stats.avg_steps_reached(), 3)});
  table.add_row({"AutoCkt PEX generalization", "40/40",
                 std::to_string(pex_stats.reached_count()) + "/" +
                     std::to_string(pex_stats.total())});
  table.add_row({"Speedup vs GA+ML", "9.56x",
                 core::speedup_string(gaml_avg,
                                      pex_stats.avg_steps_reached())});
  table.print();

  // Wall-clock equivalents at the paper's 91 s per PEX simulation.
  const double pex_sims_per_target =
      pex_stats.reached_count() > 0
          ? pex_stats.avg_steps_reached()
          : 0.0;
  const double hours_40 = core::paper_equivalent_hours(
      pex_sims_per_target * 40.0, pex->paper_sim_seconds);
  std::printf("\npaper sim-time model: %.1f h to size 40 designs at 91 "
              "s/PEX-sim on one core (paper: 68 h / \"under three days\")\n",
              hours_40);
  std::printf("note: one PEX evaluation here spans %zu PVT corners.\n",
              circuits::ngm_pex_corner_count());

  std::printf("\nshape checks: transfer degrades SE but stays far below "
              "GA+ML (%s); PEX generalization >= 90%% (%s); PEX SE > "
              "schematic SE (%s)\n",
              pex_stats.avg_steps_reached() < gaml_avg ? "PASS" : "FAIL",
              pex_stats.reach_fraction() >= 0.9 ? "PASS" : "FAIL",
              pex_stats.avg_steps_reached() >=
                      sch_stats.avg_steps_reached()
                  ? "PASS"
                  : "FAIL");
  return 0;
}
