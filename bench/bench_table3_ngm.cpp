// Table III: sample efficiency and generalization for the two-stage OTA
// with negative-gm load. Paper rows: GA 406 sims; random RL agent 4/500;
// this work SE 10, generalization 500/500.

#include "bench_common.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parse_scale(argc, argv);
  util::CliArgs args(argc, argv);
  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_ngm_problem());
  core::print_experiment_header(
      "Table III", "Negative-gm OTA sample efficiency + generalization",
      *problem);

  auto outcome = bench::get_or_train_agent(problem, scale);
  const auto config = bench::training_config(problem->name, scale);

  // One shared suite for the RL, random-agent and GA rows.
  const auto n_deploy = static_cast<std::size_t>(
      args.get_int("deploy", scale.quick ? 100 : 500));
  const spec::SpecSuite suite =
      core::make_deploy_suite(*problem, n_deploy, scale.seed + 1);
  const auto stats =
      core::deploy_agent(outcome.agent, problem, suite, config.env_config);

  const auto n_random = static_cast<std::size_t>(
      args.get_int("random_targets", scale.quick ? 100 : 500));
  const auto random_agg = core::run_random_over_suite(
      problem, suite.head(n_random), config.env_config, scale.seed + 5);

  const auto n_ga =
      static_cast<std::size_t>(
          args.get_int("ga_targets", scale.quick ? 3 : 10));
  baselines::GaConfig ga;
  ga.max_evals = 10000;
  ga.seed = scale.seed;
  const auto ga_agg =
      core::run_ga_over_suite(*problem, suite.head(n_ga), ga, {20, 40, 80});

  util::Table table({"metric", "paper", "measured"});
  table.add_row({"Genetic Alg. SE", "406",
                 util::Table::num(ga_agg.avg_evals_to_reach, 3) + " (" +
                     std::to_string(ga_agg.reached) + "/" +
                     std::to_string(ga_agg.targets) + " reached)"});
  table.add_row({"Random RL Agent generalization", "4/500",
                 std::to_string(random_agg.reached) + "/" +
                     std::to_string(random_agg.targets)});
  table.add_row({"This Work SE", "10",
                 util::Table::num(stats.avg_steps_reached(), 3)});
  table.add_row({"Generalization", "500/500 (100%)",
                 std::to_string(stats.reached_count()) + "/" +
                     std::to_string(stats.total()) + " (" +
                     util::Table::num(100.0 * stats.reach_fraction(), 3) +
                     "%)"});
  table.add_row({"SE speedup vs GA", "40.6x",
                 core::speedup_string(ga_agg.avg_evals_to_reach,
                                      stats.avg_steps_reached())});
  table.print();

  std::printf("\nshape checks: near-total generalization (%s), RL beats GA "
              "(%s), random agent near zero (%s)\n",
              stats.reach_fraction() >= 0.95 ? "PASS" : "FAIL",
              stats.avg_steps_reached() < ga_agg.avg_evals_to_reach ? "PASS"
                                                                    : "FAIL",
              static_cast<double>(random_agg.reached) / random_agg.targets <
                      0.2
                  ? "PASS"
                  : "FAIL");
  return 0;
}
