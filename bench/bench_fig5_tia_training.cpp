// Figure 5: mean episode reward for the transimpedance amplifier rises
// above zero as training completes. Trains the TIA agent (and caches it for
// bench_table1_tia) and emits the reward curve.

#include "bench_common.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parse_scale(argc, argv);
  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_tia_problem());
  core::print_experiment_header(
      "Figure 5", "TIA mean episode reward over training", *problem);

  auto outcome = bench::get_or_train_agent(
      problem, scale, /*force_train=*/true, [](const rl::IterationStats& s) {
        std::printf("  iter %3d  reward %7.2f  goal_rate %.2f\n", s.iteration,
                    s.mean_episode_reward, s.goal_rate);
        std::fflush(stdout);
      });

  std::printf("\npaper shape: the curve starts negative and climbs above 0 "
              "once targets are consistently met.\n\n");
  bench::print_training_curve(outcome.history);
  bench::save_training_curve_csv(outcome.history, "fig5_tia_training.csv");

  const auto& iters = outcome.history.iterations;
  const bool shape_ok =
      !iters.empty() && iters.front().mean_episode_reward < 0.0 &&
      iters.back().mean_episode_reward > 0.0;
  std::printf("\nshape check (starts < 0, ends > 0): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return 0;
}
