// Table I: sample efficiency and generalization on the transimpedance
// amplifier. Paper rows: genetic algorithm SE 376 (no generalization
// protocol); this work SE 15, generalization 487/500 (97.4%).

#include "bench_common.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parse_scale(argc, argv);
  util::CliArgs args(argc, argv);
  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_tia_problem());
  core::print_experiment_header(
      "Table I", "TIA sample efficiency + generalization", *problem);

  auto outcome = bench::get_or_train_agent(problem, scale);
  const auto config = bench::training_config(problem->name, scale);

  // Deployment on a fresh named suite (paper: 500 targets), generated from
  // the suite seed alone.
  const auto n_deploy = static_cast<std::size_t>(
      args.get_int("deploy", scale.quick ? 100 : 500));
  const spec::SpecSuite suite =
      core::make_deploy_suite(*problem, n_deploy, scale.seed + 1);
  const auto stats =
      core::deploy_agent(outcome.agent, problem, suite, config.env_config);

  // GA baseline with the paper's population-size sweep protocol, scored on
  // a prefix of the SAME suite the agent deployed on.
  const auto n_ga =
      static_cast<std::size_t>(
          args.get_int("ga_targets", scale.quick ? 4 : 12));
  baselines::GaConfig ga;
  ga.max_evals = 8000;
  ga.seed = scale.seed;
  const auto ga_agg =
      core::run_ga_over_suite(*problem, suite.head(n_ga), ga, {20, 40, 80});

  util::Table table({"metric", "paper", "measured"});
  table.add_row({"Genetic Alg. TIA SE", "376",
                 util::Table::num(ga_agg.avg_evals_to_reach, 3) + " (" +
                     std::to_string(ga_agg.reached) + "/" +
                     std::to_string(ga_agg.targets) + " reached)"});
  table.add_row({"This Work TIA SE", "15",
                 util::Table::num(stats.avg_steps_reached(), 3)});
  table.add_row({"Generalization TIA", "487/500 (97.4%)",
                 std::to_string(stats.reached_count()) + "/" +
                     std::to_string(stats.total()) + " (" +
                     util::Table::num(100.0 * stats.reach_fraction(), 3) +
                     "%)"});
  table.add_row({"SE speedup vs GA", "25.1x",
                 core::speedup_string(ga_agg.avg_evals_to_reach,
                                      stats.avg_steps_reached())});
  table.print();

  // The GA feasibility column above bounds what any agent can reach; our
  // TIA target box carries ~8% infeasible draws (see docs/EXPERIMENTS.md), so
  // the generalization bar is set at 80%.
  std::printf("\nshape checks: RL beats GA on simulations per target: %s; "
              "generalization > 80%%: %s\n",
              stats.avg_steps_reached() < ga_agg.avg_evals_to_reach
                  ? "PASS"
                  : "FAIL",
              stats.reach_fraction() > 0.8 ? "PASS" : "FAIL");
  return 0;
}
