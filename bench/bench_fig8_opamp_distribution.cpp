// Figure 8: distribution of reached and unreached target specifications for
// the two-stage op-amp. The paper's scatter shows the unreached targets
// clustering in a band where the bias-current budget is very low, and
// hypothesizes those points are physically unreachable. This bench deploys
// the trained agent on many targets, dumps the per-target tuples for
// re-plotting, and quantifies the low-power clustering.

#include <algorithm>

#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parse_scale(argc, argv);
  util::CliArgs args(argc, argv);
  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_two_stage_problem());
  core::print_experiment_header(
      "Figure 8", "Reached / unreached target distribution (op-amp)",
      *problem);

  auto outcome = bench::get_or_train_agent(problem, scale);
  const auto config = bench::training_config(problem->name, scale);

  const auto n_deploy = static_cast<std::size_t>(
      args.get_int("deploy", scale.quick ? 150 : 1000));
  util::Rng rng(scale.seed + 1);
  const auto targets = env::sample_targets(*problem, n_deploy, rng);
  const auto stats =
      core::deploy_agent(outcome.agent, problem, targets, config.env_config);

  // Dump the scatter data (gain, ugbw, pm, ibias, reached) for plotting.
  util::CsvWriter csv(
      {"target_gain", "target_ugbw", "target_pm", "target_ibias", "reached",
       "steps"});
  std::vector<double> reached_ibias, unreached_ibias;
  for (const auto& r : stats.records) {
    csv.add_row({r.target[0], r.target[1], r.target[2], r.target[3],
                 r.reached ? 1.0 : 0.0, static_cast<double>(r.steps)});
    (r.reached ? reached_ibias : unreached_ibias).push_back(r.target[3]);
  }
  if (csv.save("fig8_opamp_distribution.csv")) {
    std::printf("[bench] wrote fig8_opamp_distribution.csv\n");
  }

  std::printf("\nreached %d/%d targets (paper: 963/1000)\n",
              stats.reached_count(), stats.total());

  // Clustering statistic: the paper's unreached points sit at low bias
  // current. Compare the median target ibias budget of unreached vs
  // reached targets.
  if (!unreached_ibias.empty() && !reached_ibias.empty()) {
    const double med_unreached = util::median(unreached_ibias);
    const double med_reached = util::median(reached_ibias);
    std::printf("median ibias budget, unreached targets: %.3g A\n",
                med_unreached);
    std::printf("median ibias budget, reached targets:   %.3g A\n",
                med_reached);
    std::printf("shape check (unreached cluster at lower power budgets): "
                "%s\n",
                med_unreached < med_reached ? "PASS" : "FAIL");
  } else if (unreached_ibias.empty()) {
    std::printf("no unreached targets at this scale; paper had 37/1000 "
                "unreached\n");
  }
  return 0;
}
