// Figure 14: (a) a sample trajectory of the schematic-trained agent
// deployed on the PEX environment, converging to a target in ~11 steps;
// (b) a histogram of the average percent difference between schematic and
// PEX simulation across 50 design points. Optionally (--ablate-pm) compares
// transfer quality when the phase-margin target is trained as a range
// versus a single lower bound (the paper's Section III-D observation).

#include <cmath>

#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parse_scale(argc, argv);
  util::CliArgs args(argc, argv);
  auto schematic = std::make_shared<const circuits::SizingProblem>(
      circuits::make_ngm_problem());
  auto pex = std::make_shared<const circuits::SizingProblem>(
      circuits::make_ngm_pex_problem());
  core::print_experiment_header(
      "Figure 14", "Transfer trajectory + schematic-vs-PEX histogram", *pex);

  auto outcome = bench::get_or_train_agent(schematic, scale);
  const auto config = bench::training_config(schematic->name, scale);

  // ---- (a) sample PEX trajectory -----------------------------------------
  // The paper's Fig. 14 shows one *successful* transfer trajectory; scan a
  // few targets and trace the first reached one (reporting how many were
  // scanned keeps the selection honest).
  util::Rng rng(scale.seed + 3);
  core::TrajectoryTrace trace;
  circuits::SpecVector target;
  int scanned = 0;
  for (; scanned < 10; ++scanned) {
    target = env::sample_target(*pex, rng);
    trace =
        core::trace_trajectory(outcome.agent, pex, target, config.env_config);
    if (trace.reached) break;
  }
  std::printf("sample PEX trajectory (paper: converges in ~11 steps; "
              "scanned %d target(s) for a reached one):\n",
              scanned + 1);
  std::printf("  target:");
  for (std::size_t i = 0; i < pex->specs.size(); ++i) {
    std::printf(" %s=%.4g", pex->specs[i].name.c_str(), target[i]);
  }
  std::printf("\n");
  util::CsvWriter traj_csv({"step", "gain", "ugbw", "pm"});
  for (std::size_t t = 0; t < trace.specs.size(); ++t) {
    std::printf("  step %2zu:", t);
    for (double v : trace.specs[t]) std::printf(" %11.5g", v);
    std::printf("\n");
    traj_csv.add_row({static_cast<double>(t), trace.specs[t][0],
                      trace.specs[t][1], trace.specs[t][2]});
  }
  std::printf("  reached=%s in %zu steps\n", trace.reached ? "yes" : "no",
              trace.specs.size() - 1);
  if (traj_csv.save("fig14_transfer_trajectory.csv")) {
    std::printf("[bench] wrote fig14_transfer_trajectory.csv\n");
  }

  // ---- (b) schematic-vs-PEX percent-difference histogram ------------------
  const auto n_designs = static_cast<std::size_t>(
      args.get_int("designs", scale.quick ? 20 : 50));
  std::vector<double> pct_diffs;
  util::Rng drng(scale.seed + 4);
  for (std::size_t d = 0; d < n_designs; ++d) {
    circuits::ParamVector p;
    for (const auto& def : schematic->params) {
      // Sample around the centre half of the grid, where trained agents
      // operate (grid edges are mostly broken designs either way).
      const int k = def.grid_size();
      p.push_back(static_cast<int>(drng.uniform_int(k / 4, 3 * k / 4)));
    }
    auto sch = schematic->evaluate(p);
    auto px = pex->evaluate(p);
    if (!sch.ok() || !px.ok()) continue;
    double acc = 0.0;
    for (std::size_t i = 0; i < sch->size(); ++i) {
      const double denom = std::max(std::fabs((*sch)[i]), 1e-12);
      acc += 100.0 * std::fabs((*px)[i] - (*sch)[i]) / denom;
    }
    pct_diffs.push_back(acc / static_cast<double>(sch->size()));
  }

  const auto hist = util::make_histogram(pct_diffs, 0.0, 60.0, 12);
  std::printf("\nschematic vs PEX average %% difference over %zu designs "
              "(paper Fig. 14 bottom-right):\n",
              pct_diffs.size());
  util::CsvWriter hist_csv({"pct_diff_bin_center", "count"});
  for (std::size_t b = 0; b < hist.counts.size(); ++b) {
    std::printf("  %5.1f%% | %s (%zu)\n", hist.bin_center(b),
                std::string(hist.counts[b], '#').c_str(), hist.counts[b]);
    hist_csv.add_row({hist.bin_center(b), static_cast<double>(hist.counts[b])});
  }
  if (hist_csv.save("fig14_pex_histogram.csv")) {
    std::printf("[bench] wrote fig14_pex_histogram.csv\n");
  }
  std::printf("median %% difference: %.1f%% (paper: distribution spanning "
              "roughly 5-25%%)\n",
              util::median(pct_diffs));

  // ---- optional PM-range ablation ----------------------------------------
  if (args.get_bool("ablate-pm")) {
    std::printf("\nPM-range ablation (paper Section III-D): training with a "
                "PM target *range* vs a single lower bound.\n");
    // Lower-bound-only variant of the schematic problem.
    auto lb = circuits::make_ngm_problem();
    lb.specs[2].sample_lo = 60.0;
    lb.specs[2].sample_hi = 60.0;
    auto lb_problem =
        std::make_shared<const circuits::SizingProblem>(std::move(lb));
    core::AutoCktConfig lb_config = config;
    lb_config.ppo.max_iterations = scale.quick ? 10 : 30;
    auto lb_outcome = core::train_agent(lb_problem, lb_config);

    util::Rng arng(scale.seed + 9);
    const auto ab_targets = env::sample_targets(*pex, 30, arng);
    const auto range_stats = core::deploy_agent(outcome.agent, pex,
                                                ab_targets, config.env_config);
    const auto lb_stats = core::deploy_agent(lb_outcome.agent, pex,
                                             ab_targets, config.env_config);
    std::printf("  PM-range-trained agent on PEX: %d/%d @ %.1f steps\n",
                range_stats.reached_count(), range_stats.total(),
                range_stats.avg_steps_reached());
    std::printf("  PM-lower-bound agent on PEX:   %d/%d @ %.1f steps\n",
                lb_stats.reached_count(), lb_stats.total(),
                lb_stats.avg_steps_reached());
  }
  return 0;
}
