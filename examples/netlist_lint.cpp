// netlist_lint: run the static-analysis subsystem (analysis/deck_lint.hpp)
// over .cir decks from the command line — the same checks CircuitRegistry
// and make_netlist_problem apply before any deck reaches the simulator.
//
//   netlist_lint [options] <deck.cir | dir>...
//
//   --json      emit a JSON array of per-deck reports (machine-readable;
//               the CI deck-lint job uploads this as an artifact)
//   --Werror    treat warnings as errors (non-zero exit)
//   --ids       print the diagnostic catalog (id, severity, summary) and exit
//
// Exit codes: 0 all decks clean (warnings allowed unless --Werror),
//             1 diagnostics at the gating severity were reported,
//             2 usage or I/O error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/deck_lint.hpp"

namespace {

using autockt::analysis::count_severity;
using autockt::analysis::Severity;

int usage() {
  std::cerr << "usage: netlist_lint [--json] [--Werror] [--ids] "
               "<deck.cir | dir>...\n";
  return 2;
}

/// Expand positional arguments into a flat, sorted list of deck files.
bool collect_decks(const std::vector<std::string>& args,
                   std::vector<std::string>& out) {
  namespace fs = std::filesystem;
  for (const std::string& arg : args) {
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      std::vector<std::string> found;
      for (const auto& entry : fs::directory_iterator(arg, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".cir") {
          found.push_back(entry.path().string());
        }
      }
      std::sort(found.begin(), found.end());
      out.insert(out.end(), found.begin(), found.end());
    } else if (fs::is_regular_file(arg, ec)) {
      out.push_back(arg);
    } else {
      std::cerr << "netlist_lint: no such file or directory: '" << arg
                << "'\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Flags never take values here, so parse by hand — the shared CliArgs
  // helper would swallow a deck path following a bare flag.
  bool json = false;
  bool werror = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--Werror") {
      werror = true;
    } else if (arg == "--ids") {
      for (const auto& def : autockt::analysis::diagnostic_catalog()) {
        std::cout << def.id << "  "
                  << autockt::analysis::severity_name(def.severity) << "  "
                  << def.summary << '\n';
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  std::vector<std::string> decks;
  if (!collect_decks(inputs, decks)) return 2;
  if (decks.empty()) {
    std::cerr << "netlist_lint: no .cir decks found\n";
    return 2;
  }

  std::size_t total_errors = 0;
  std::size_t total_warnings = 0;
  std::ostringstream json_out;
  json_out << "[";
  bool first = true;

  for (const std::string& path : decks) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "netlist_lint: cannot read '" << path << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();

    const auto diags = autockt::analysis::lint_deck_text(text.str());
    total_errors += count_severity(diags, Severity::Error);
    total_warnings += count_severity(diags, Severity::Warning);

    if (json) {
      std::string report =
          autockt::analysis::render_diagnostics_json(diags, path);
      if (!report.empty() && report.back() == '\n') report.pop_back();
      json_out << (first ? "\n" : ",\n") << report;
      first = false;
    } else if (!diags.empty()) {
      std::cout << autockt::analysis::render_diagnostics_text(diags, path);
    }
  }

  if (json) {
    json_out << (first ? "]" : "\n]") << '\n';
    std::cout << json_out.str();
  } else {
    std::cout << decks.size() << " deck(s): " << total_errors
              << " error(s), " << total_warnings << " warning(s)\n";
  }

  const bool failed = total_errors > 0 || (werror && total_warnings > 0);
  return failed ? 1 : 0;
}
