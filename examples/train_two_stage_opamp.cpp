// Train an AutoCkt agent on the two-stage Miller op-amp (paper Section
// III-B) and deploy it on unseen targets. Demonstrates the full train ->
// deploy API. For the paper-scale run use bench_table2_opamp; this example
// defaults to a budget that finishes in a couple of minutes.
//
// Usage: train_two_stage_opamp [--iterations=N] [--steps=N] [--targets=N]
//                              [--seed=S] [--stochastic]

#include <cstdio>
#include <memory>

#include "autockt/autockt.hpp"
#include "autockt/experiments.hpp"
#include "circuits/problems.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);

  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_two_stage_problem());

  core::AutoCktConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  config.env_config.horizon = static_cast<int>(args.get_int("horizon", 60));
  config.ppo.max_iterations = static_cast<int>(args.get_int("iterations", 40));
  config.ppo.steps_per_iteration =
      static_cast<int>(args.get_int("steps", 1200));
  config.ppo.target_mean_reward = args.get_double("stop_reward", 0.0);
  config.ppo.stop_patience = static_cast<int>(args.get_int("patience", 1));
  config.ppo.entropy_coef = args.get_double("entropy", config.ppo.entropy_coef);

  std::printf("training AutoCkt on %s ...\n", problem->name.c_str());
  auto outcome =
      core::train_agent(problem, config, [](const rl::IterationStats& s) {
        std::printf(
            "iter %3d  steps %7ld  mean_ep_reward %8.3f  goal_rate %.2f  "
            "ep_len %5.1f  entropy %.3f",
            s.iteration, s.cumulative_env_steps, s.mean_episode_reward,
            s.goal_rate, s.mean_episode_len, s.entropy);
        if (s.holdout_evaluated) {
          std::printf("  holdout_goal_rate %.2f", s.holdout_goal_rate);
        }
        std::printf("\n");
        std::fflush(stdout);
      });
  std::printf("converged=%d after %ld env steps "
              "(final holdout goal rate %.2f)\n",
              outcome.history.converged ? 1 : 0,
              outcome.history.total_env_steps,
              outcome.history.final_holdout_goal_rate);

  // Deployment on fresh targets the agent has never seen.
  const auto n_targets = static_cast<std::size_t>(args.get_int("targets", 50));
  const spec::SpecSuite deploy_suite =
      core::make_deploy_suite(*problem, n_targets, config.seed + 1);
  const auto stats =
      core::deploy_agent(outcome.agent, problem, deploy_suite,
                         config.env_config, args.get_bool("stochastic"));

  std::printf("\ndeployment: reached %d/%d targets, avg steps (reached) %.1f\n",
              stats.reached_count(), stats.total(),
              stats.avg_steps_reached());
  return 0;
}
