// Characterize the technology cards: Id-Vgs and Id-Vds families plus the
// inverter trip point — the first plots a designer pulls from any new PDK.
// Writes CSVs next to the binary for plotting.
//
// Usage: mosfet_characterization [--card=ptm45|finfet16]

#include <cstdio>

#include "spice/characterize.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

using namespace autockt;
using namespace autockt::spice;

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::string which = args.get("card", "ptm45");
  const TechCard card =
      which == "finfet16" ? TechCard::finfet16() : TechCard::ptm45();

  MosGeom geom;
  geom.width = card.quantized_width ? 20.0 * card.fin_width : 10e-6;
  geom.length = 2.0 * card.l_min;

  std::printf("card %s: vdd=%.2f V, l=%.0f nm, w=%.2f um\n",
              card.name.c_str(), card.vdd, geom.length * 1e9,
              geom.width * 1e6);

  // Id-Vgs at Vds = vdd/2 for both polarities.
  SweepSpec vg_sweep{0.0, card.vdd, 61};
  util::CsvWriter idvgs({"vgs", "id_nmos", "gm_nmos", "id_pmos", "gm_pmos"});
  const auto n_curve =
      id_vgs_curve(card, MosType::Nmos, geom, card.vdd / 2.0, vg_sweep);
  const auto p_curve =
      id_vgs_curve(card, MosType::Pmos, geom, card.vdd / 2.0, vg_sweep);
  for (std::size_t i = 0; i < n_curve.size(); ++i) {
    idvgs.add_row({n_curve[i].x, n_curve[i].id, n_curve[i].gm, p_curve[i].id,
                   p_curve[i].gm});
  }
  idvgs.save("char_" + card.name + "_id_vgs.csv");

  // Id-Vds family for three gate drives.
  util::CsvWriter idvds({"vds", "id_low", "id_mid", "id_high"});
  SweepSpec vd_sweep{0.0, card.vdd, 61};
  const double vth = card.vth_n;
  const auto low =
      id_vds_curve(card, MosType::Nmos, geom, vth + 0.05, vd_sweep);
  const auto mid =
      id_vds_curve(card, MosType::Nmos, geom, vth + 0.15, vd_sweep);
  const auto high =
      id_vds_curve(card, MosType::Nmos, geom, vth + 0.3, vd_sweep);
  for (std::size_t i = 0; i < low.size(); ++i) {
    idvds.add_row({low[i].x, low[i].id, mid[i].id, high[i].id});
  }
  idvds.save("char_" + card.name + "_id_vds.csv");

  // Key scalar figures of merit.
  const auto ss = n_curve[n_curve.size() / 2];
  std::printf("NMOS at vgs=%.2f, vds=%.2f: id=%.4g A, gm=%.4g S, gm/id=%.1f\n",
              ss.x, card.vdd / 2.0, ss.id, ss.gm, ss.gm / ss.id);
  const double trip = inverter_trip_voltage(
      card, geom.width, 2.0 * geom.width, geom.length);
  std::printf("inverter trip voltage (wp = 2 wn): %.4f V (%.1f%% of vdd)\n",
              trip, 100.0 * trip / card.vdd);
  std::printf("wrote char_%s_id_vgs.csv / char_%s_id_vds.csv\n",
              card.name.c_str(), card.name.c_str());
  return 0;
}
