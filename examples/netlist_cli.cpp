// Text-deck front end to the simulator: parse a SPICE-dialect netlist and
// run whatever analyses it requests (.op, .ac, .tran, .noise).
//
// Usage: netlist_cli <deck.sp>
//        netlist_cli --demo        (runs a built-in RC + inverter demo deck)
//        netlist_cli <deck.cir> --characterize [--cache <dir>] [--workers N]
//
// --characterize treats a sizing deck (.param/.spec/.measure declarations)
// as a full SizingProblem and evaluates its grid centre through the same
// backend stack the trainer uses — including the persistent on-disk eval
// cache (--cache) and the forked evaluation workers (--workers).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "circuits/netlist_problem.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/measure.hpp"
#include "spice/netlist_parser.hpp"
#include "util/cli.hpp"

using namespace autockt;
using namespace autockt::spice;

namespace {

const char* kDemoDeck = R"(
.title demo: ptm45 inverter driving an RC load
.card ptm45
vdd vdd 0 dc 1.2
vin in 0 dc 0.60 ac 1 step 0.2 1.0 1n 0.05n
mn  out in 0   0   nmos w=2u  l=90n
mp  out in vdd vdd pmos w=4u  l=90n
rl  out mid 1k
cl  mid 0 50f
.op
.ac out 1k 100g 10
.tran out 5n 10p
.noise out 1k 1g
.end
)";

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  std::string text;
  if (args.get_bool("demo") || args.positional().empty()) {
    std::printf("(running built-in demo deck; pass a file path to simulate "
                "your own)\n");
    text = kDemoDeck;
  } else {
    std::ifstream in(args.positional()[0]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", args.positional()[0].c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  if (args.get_bool("characterize")) {
    circuits::ProblemOptions options;
    options.cache_path = args.get("cache", "");
    options.eval_workers =
        static_cast<std::size_t>(args.get_int("workers", 0));
    const std::string name =
        args.positional().empty()
            ? "demo"
            : std::filesystem::path(args.positional()[0]).stem().string();
    auto prob = circuits::make_netlist_problem_from_text(text, name, options);
    if (!prob.ok()) {
      std::fprintf(stderr, "%s\n", prob.error().message.c_str());
      return 1;
    }
    auto specs = prob->evaluate(prob->center_params());
    if (!specs.ok()) {
      std::fprintf(stderr, "grid-centre evaluation failed: %s\n",
                   specs.error().message.c_str());
      return 1;
    }
    std::printf("%s grid centre:\n", prob->name.c_str());
    for (std::size_t i = 0; i < prob->specs.size(); ++i) {
      std::printf("  %-18s = %.6g\n", prob->specs[i].name.c_str(),
                  (*specs)[i]);
    }
    std::printf("eval stats: %s\n", prob->eval_stats().summary().c_str());
    return 0;
  }

  auto parsed = parse_netlist(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error().message.c_str());
    return 1;
  }
  ParsedNetlist& deck = *parsed;
  if (!deck.title.empty()) std::printf("title: %s\n", deck.title.c_str());
  std::printf("%zu nodes, %zu devices\n\n", deck.circuit.num_nodes() - 1,
              deck.circuit.devices().size());

  DcOptions dc_opt;
  dc_opt.initial_node_v = deck.initial_node_voltages();
  auto op = solve_op(deck.circuit, dc_opt);
  if (!op.ok()) {
    std::fprintf(stderr, "DC failed: %s\n", op.error().message.c_str());
    return 1;
  }
  if (deck.want_op) {
    std::printf(".op results:\n");
    for (NodeId n = 1; n < deck.circuit.num_nodes(); ++n) {
      std::printf("  V(node %zu) = %.6f V\n", n, op->voltage(n));
    }
    for (std::size_t b = 0; b < op->branch_i.size(); ++b) {
      std::printf("  I(branch %zu) = %.6g A\n", b, op->branch_i[b]);
    }
    std::printf("\n");
  }

  for (const auto& req : deck.ac) {
    auto sweep = ac_sweep(deck.circuit, *op, deck.circuit.node(req.probe),
                          kGround, req.options);
    if (!sweep.ok()) {
      std::fprintf(stderr, ".ac failed: %s\n", sweep.error().message.c_str());
      continue;
    }
    const auto m = measure_ac(*sweep);
    std::printf(".ac %s: dc_gain=%.4g", req.probe.c_str(), m.dc_gain);
    if (m.f3db_found) std::printf("  f3db=%.4g Hz", m.f3db);
    if (m.ugbw_found) {
      std::printf("  ugbw=%.4g Hz  pm=%.2f deg", m.ugbw, m.phase_margin_deg);
    }
    std::printf("\n");
  }

  for (const auto& req : deck.tran) {
    auto tran = transient(deck.circuit, *op, {deck.circuit.node(req.probe)},
                          req.options);
    if (!tran.ok()) {
      std::fprintf(stderr, ".tran failed: %s\n", tran.error().message.c_str());
      continue;
    }
    const double ts = settling_time(tran->time, tran->waveforms[0]);
    std::printf(".tran %s: %zu points, v(start)=%.4f v(end)=%.4f "
                "settling=%.4g s\n",
                req.probe.c_str(), tran->time.size(),
                tran->waveforms[0].front(), tran->waveforms[0].back(), ts);
  }

  for (const auto& req : deck.noise) {
    auto noise = noise_sweep(deck.circuit, *op,
                             deck.circuit.node(req.probe), kGround,
                             req.options);
    if (!noise.ok()) {
      std::fprintf(stderr, ".noise failed: %s\n",
                   noise.error().message.c_str());
      continue;
    }
    std::printf(".noise %s: integrated output noise %.4g Vrms\n",
                req.probe.c_str(), noise->total_output_vrms());
  }
  return 0;
}
