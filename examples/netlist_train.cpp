// Registry-driven trainer: pick any sizing scenario — a built-in circuit or
// a .cir deck with .param/.spec/.measure sizing declarations — train an
// AutoCkt agent on it, and report the train-vs-holdout generalization
// scorecard. The whole point: a new circuit is a file drop, not a C++
// change.
//
// Usage:
//   netlist_train --problem <name|path.cir>  train + scorecard
//   netlist_train --list                     show registered scenarios
//   netlist_train --lint                     static-analysis report for the
//                                            registered decks, then exit
//   netlist_train --problem X --characterize evaluate the grid centre only
//   netlist_train --problem X --sweep N      specs over N random designs
//
// Options: --decks <dir> (extra scenario directory, default examples/decks
// when present), --iterations --steps --horizon --seed --train-targets
// --holdout --curriculum --stochastic, --trace <path.jsonl> (record the
// run's spans/counters and write a JSONL trace — see docs/OBSERVABILITY.md),
// --cache <dir> (persistent on-disk eval cache: a rerun of the same problem
// replays memoized evaluations instead of re-simulating; the directory is
// fingerprint-guarded against problem-definition changes), --workers N
// (fork N evaluation worker processes; results stay bitwise-identical to
// the in-process path).
//
// Exit codes: 0 success; 1 failure (unknown scenario, simulation error, or
// — under --lint — a deck with error-severity findings refused
// registration, with the rendered diagnostics on stderr).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "autockt/autockt.hpp"
#include "circuits/registry.hpp"
#include "eval/cached_backend.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace autockt;

namespace {

void print_problem(const circuits::SizingProblem& prob) {
  std::printf("problem %s: %s\n", prob.name.c_str(),
              prob.description.c_str());
  std::printf("  action space: 10^%.1f designs over %zu parameters\n",
              prob.action_space_log10(), prob.params.size());
  for (const auto& p : prob.params) {
    std::printf("    %-12s [%g, %g] x%d\n", p.name.c_str(), p.start, p.end,
                p.grid_size());
  }
  for (const auto& s : prob.specs) {
    const char* sense = s.sense == circuits::SpecSense::GreaterEq ? ">="
                        : s.sense == circuits::SpecSense::LessEq  ? "<="
                                                                  : "min";
    std::printf("    %-18s %s targets in [%g, %g]\n", s.name.c_str(), sense,
                s.sample_lo, s.sample_hi);
  }
}

int characterize(const circuits::SizingProblem& prob) {
  auto specs = prob.evaluate(prob.center_params());
  if (!specs.ok()) {
    std::fprintf(stderr, "grid-centre evaluation failed: %s\n",
                 specs.error().message.c_str());
    return 1;
  }
  std::printf("  grid centre:\n");
  for (std::size_t i = 0; i < prob.specs.size(); ++i) {
    std::printf("    %-18s = %.6g\n", prob.specs[i].name.c_str(),
                (*specs)[i]);
  }
  return 0;
}

int sweep(const circuits::SizingProblem& prob, int count,
          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> observed(prob.specs.size());
  int failures = 0;
  for (int n = 0; n < count; ++n) {
    circuits::ParamVector p(prob.params.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] = static_cast<int>(
          rng.bounded(static_cast<std::uint64_t>(prob.params[i].grid_size())));
    }
    auto specs = prob.evaluate(p);
    if (!specs.ok()) {
      ++failures;
      continue;
    }
    for (std::size_t i = 0; i < observed.size(); ++i) {
      observed[i].push_back((*specs)[i]);
    }
  }
  std::printf("  %d random designs (%d simulation failures):\n", count,
              failures);
  for (std::size_t i = 0; i < observed.size(); ++i) {
    auto& v = observed[i];
    if (v.empty()) continue;
    std::sort(v.begin(), v.end());
    std::printf("    %-18s min %.4g  p25 %.4g  median %.4g  p75 %.4g  "
                "max %.4g\n",
                prob.specs[i].name.c_str(), v.front(), v[v.size() / 4],
                v[v.size() / 2], v[3 * v.size() / 4], v.back());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);

  circuits::CircuitRegistry registry =
      circuits::CircuitRegistry::with_builtins();
  const std::string decks_dir = args.get("decks", "examples/decks");
  if (std::filesystem::is_directory(decks_dir)) {
    auto registered = registry.add_deck_dir(decks_dir);
    if (!registered.ok()) {
      std::fprintf(stderr, "deck scan failed: %s\n",
                   registered.error().message.c_str());
      return 1;
    }
  }

  if (args.get_bool("lint")) {
    // Decks with error-severity findings never registered — add_deck_dir
    // already failed above with the rendered diagnostics. What remains is
    // the warning report for everything that made it in.
    if (registry.lint_reports().empty()) {
      std::printf("all registered decks lint clean\n");
      return 0;
    }
    for (const auto& [name, diags] : registry.lint_reports()) {
      std::fputs(
          analysis::render_diagnostics_text(diags, name).c_str(), stdout);
    }
    return 0;
  }

  if (args.get_bool("list")) {
    std::printf("registered scenarios:\n");
    for (const std::string& name : registry.names()) {
      std::printf("  %-18s %s\n", name.c_str(),
                  registry.description(name).c_str());
    }
    return 0;
  }

  const std::string scenario = args.get("problem", "");
  if (scenario.empty()) {
    std::fprintf(stderr,
                 "usage: netlist_train --problem <name|path.cir> "
                 "[--list] [--lint] [--characterize] [--sweep N] "
                 "[--cache <dir>] [--workers N]\n");
    return 1;
  }

  circuits::ProblemOptions problem_options;
  problem_options.cache_path = args.get("cache", "");
  problem_options.eval_workers =
      static_cast<std::size_t>(args.get_int("workers", 0));

  auto problem = [&]() {
    try {
      return registry.make_shared(scenario, problem_options);
    } catch (const std::runtime_error& e) {
      // Built-in factories throw when DiskLogStore::open refuses the cache
      // directory (deck scenarios surface the same failure as an Error).
      return decltype(registry.make_shared(scenario))(
          util::Error{e.what(), 1});
    }
  }();
  if (!problem.ok()) {
    std::fprintf(stderr, "%s\n", problem.error().message.c_str());
    return 1;
  }
  print_problem(**problem);
  if (!problem_options.cache_path.empty()) {
    // approx_size is the lock-free counter — fine for logging (satellite
    // fix: never sum every stripe under lock just to print a number).
    const auto* cached =
        dynamic_cast<const eval::CachedBackend*>((*problem)->backend.get());
    std::printf("  eval cache: %s (%zu entries warm)\n",
                problem_options.cache_path.c_str(),
                cached != nullptr ? cached->approx_size() : 0);
  }

  // --trace: record the whole run and flush a JSONL trace on the way out,
  // whichever mode ran (docs/OBSERVABILITY.md describes the schema).
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) {
    if (!trace::compiled_in()) {
      std::fprintf(stderr,
                   "--trace: recorder compiled out (-DAUTOCKT_TRACE=OFF); "
                   "the trace will contain no records\n");
    }
    trace::recorder().reset();
    trace::recorder().set_enabled(true);
  }
  auto finish = [&](int rc) {
    std::printf("eval stats: %s\n",
                (*problem)->eval_stats().summary().c_str());
    if (trace_path.empty()) return rc;
    trace::recorder().set_enabled(false);
    if (!trace::recorder().write_jsonl_file(trace_path)) {
      std::fprintf(stderr, "cannot write trace %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("wrote trace %s (%zu records)\n", trace_path.c_str(),
                trace::recorder().snapshot().size());
    return rc;
  };

  if (args.get_bool("characterize")) return finish(characterize(**problem));
  if (args.has("sweep")) {
    return finish(sweep(**problem,
                        static_cast<int>(args.get_int("sweep", 64)),
                        static_cast<std::uint64_t>(args.get_int("seed", 7))));
  }

  core::AutoCktConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  config.env_config.horizon = static_cast<int>(args.get_int("horizon", 40));
  config.ppo.max_iterations =
      static_cast<int>(args.get_int("iterations", 30));
  config.ppo.steps_per_iteration =
      static_cast<int>(args.get_int("steps", 1000));
  config.ppo.target_mean_reward = args.get_double("stop_reward", 9.0);
  config.train_target_count =
      static_cast<std::size_t>(args.get_int("train-targets", 50));
  config.holdout_target_count =
      static_cast<std::size_t>(args.get_int("holdout", 20));
  if (args.get_bool("curriculum")) {
    config.sampling = core::AutoCktConfig::Sampling::Curriculum;
  }

  std::printf("\ntraining on %s ...\n", (*problem)->name.c_str());
  auto outcome =
      core::train_agent(*problem, config, [](const rl::IterationStats& s) {
        std::printf("iter %3d  steps %7ld  mean_ep_reward %8.3f  "
                    "goal_rate %.2f",
                    s.iteration, s.cumulative_env_steps,
                    s.mean_episode_reward, s.goal_rate);
        if (s.holdout_evaluated) {
          std::printf("  holdout_goal_rate %.2f", s.holdout_goal_rate);
        }
        std::printf("\n");
        std::fflush(stdout);
      });

  // Train-vs-holdout scorecard on the frozen suites (paper Figs. 8/12).
  const auto report = core::evaluate_generalization(
      outcome.agent, *problem, outcome.train_suite, outcome.holdout_suite,
      config.env_config, config.seed + 1);
  std::printf("\ngeneralization scorecard for %s:\n",
              (*problem)->name.c_str());
  std::printf("  %-28s goal rate %.2f  (%d/%d, avg steps %.1f)\n",
              report.train_suite_name.c_str(), report.train_goal_rate(),
              report.train.reached_count(), report.train.total(),
              report.train.avg_steps_reached());
  std::printf("  %-28s goal rate %.2f  (%d/%d, avg steps %.1f)\n",
              report.holdout_suite_name.c_str(), report.holdout_goal_rate(),
              report.holdout.reached_count(), report.holdout.total(),
              report.holdout.avg_steps_reached());
  std::printf("  generalization gap %.2f\n", report.gap());
  return finish(0);
}
