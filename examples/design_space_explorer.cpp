// Design-space explorer: randomly subsamples a sizing problem's parameter
// grid and reports the achievable specification region (percentiles, failure
// rate). This is the calibration tool used to align target sampling ranges
// with the simulator surrogate (docs/DESIGN.md section 3), and a template for
// probing your own problems.
//
// Usage: design_space_explorer [--problem=tia|two_stage|ngm|ngm_pex]
//                              [--samples=N] [--seed=S]

#include <cstdio>
#include <string>
#include <vector>

#include "circuits/problems.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::string which = args.get("problem", "two_stage");
  const auto samples = static_cast<std::size_t>(args.get_int("samples", 300));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  circuits::SizingProblem prob;
  if (which == "tia") {
    prob = circuits::make_tia_problem();
  } else if (which == "two_stage") {
    prob = circuits::make_two_stage_problem();
  } else if (which == "ngm") {
    prob = circuits::make_ngm_problem();
  } else if (which == "ngm_pex") {
    prob = circuits::make_ngm_pex_problem();
  } else {
    std::fprintf(stderr, "unknown problem '%s'\n", which.c_str());
    return 1;
  }

  std::printf("problem: %s\n%s\n", prob.name.c_str(),
              prob.description.c_str());
  std::printf("parameter grid: %zu params, 10^%.1f combinations\n",
              prob.params.size(), prob.action_space_log10());

  // The grid centre is every episode's start point; report it first.
  {
    auto center = prob.evaluate(prob.center_params());
    std::printf("grid-centre design:");
    if (center.ok()) {
      for (std::size_t i = 0; i < prob.specs.size(); ++i) {
        std::printf("  %s=%s", prob.specs[i].name.c_str(),
                    util::Table::num((*center)[i]).c_str());
      }
      std::printf("\n");
    } else {
      std::printf("  evaluation failed: %s\n", center.error().message.c_str());
    }
  }

  util::Rng rng(seed);
  std::vector<std::vector<double>> per_spec(prob.specs.size());
  std::size_t failures = 0;

  for (std::size_t s = 0; s < samples; ++s) {
    circuits::ParamVector p;
    p.reserve(prob.params.size());
    for (const auto& def : prob.params) {
      p.push_back(static_cast<int>(rng.bounded(
          static_cast<std::uint64_t>(def.grid_size()))));
    }
    auto specs = prob.evaluate(p);
    if (!specs.ok()) {
      ++failures;
      continue;
    }
    for (std::size_t i = 0; i < prob.specs.size(); ++i) {
      per_spec[i].push_back((*specs)[i]);
    }
  }

  std::printf("\nsimulated %zu random designs, %zu failures (%.1f%%)\n\n",
              samples, failures,
              100.0 * static_cast<double>(failures) /
                  static_cast<double>(samples));

  util::Table table({"spec", "sense", "p1", "p10", "p50", "p90", "p99",
                     "sample_lo", "sample_hi"});
  for (std::size_t i = 0; i < prob.specs.size(); ++i) {
    const auto& def = prob.specs[i];
    const char* sense = def.sense == circuits::SpecSense::GreaterEq ? ">="
                        : def.sense == circuits::SpecSense::LessEq  ? "<="
                                                                    : "min";
    table.add_row({def.name, sense,
                   util::Table::num(util::percentile(per_spec[i], 1)),
                   util::Table::num(util::percentile(per_spec[i], 10)),
                   util::Table::num(util::percentile(per_spec[i], 50)),
                   util::Table::num(util::percentile(per_spec[i], 90)),
                   util::Table::num(util::percentile(per_spec[i], 99)),
                   util::Table::num(def.sample_lo),
                   util::Table::num(def.sample_hi)});
  }
  table.print();

  // Coverage study: what fraction of randomly sampled targets is dominated
  // by at least one of the simulated designs? This upper-bounds the
  // generalization rate any sizing agent can reach on this problem.
  const auto n_targets =
      static_cast<std::size_t>(args.get_int("targets", 200));
  if (n_targets > 0 && !per_spec[0].empty()) {
    std::size_t covered = 0;
    std::size_t satisfying_pairs = 0;
    const std::size_t n_designs = per_spec[0].size();
    for (std::size_t t = 0; t < n_targets; ++t) {
      circuits::SpecVector target;
      target.reserve(prob.specs.size());
      for (const auto& def : prob.specs) {
        target.push_back(rng.uniform(def.sample_lo, def.sample_hi));
      }
      bool any = false;
      for (std::size_t d = 0; d < n_designs; ++d) {
        bool all = true;
        for (std::size_t i = 0; i < prob.specs.size(); ++i) {
          if (!prob.specs[i].satisfied(per_spec[i][d], target[i])) {
            all = false;
            break;
          }
        }
        if (all) {
          ++satisfying_pairs;
          any = true;
        }
      }
      covered += any ? 1 : 0;
    }
    std::printf(
        "\ncoverage: %zu/%zu random targets dominated by >=1 of %zu random "
        "designs (%.1f%%)\n",
        covered, n_targets, n_designs,
        100.0 * static_cast<double>(covered) /
            static_cast<double>(n_targets));
    std::printf(
        "difficulty: P(random design satisfies random target) = %.5f\n",
        static_cast<double>(satisfying_pairs) /
            (static_cast<double>(n_targets) *
             static_cast<double>(n_designs)));
  }
  return 0;
}
