// Quickstart: the smallest end-to-end tour of the library.
//
//  1. Build one of the paper's sizing problems (the transimpedance
//     amplifier) and simulate a single design point.
//  2. Step the gym-style environment by hand.
//  3. Train a tiny PPO agent for a few iterations and ask it for a design.
//
// Usage: quickstart [--iterations=N]

#include <cstdio>
#include <memory>

#include "autockt/autockt.hpp"
#include "autockt/experiments.hpp"
#include "circuits/problems.hpp"
#include "util/cli.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);

  // --- 1. A sizing problem is a parameter grid + specs + evaluate() -------
  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_tia_problem());
  std::printf("problem: %s\n", problem->description.c_str());
  std::printf("grid: %zu parameters, 10^%.1f combinations\n",
              problem->params.size(), problem->action_space_log10());

  const circuits::ParamVector center = problem->center_params();
  auto specs = problem->evaluate(center);
  if (!specs.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 specs.error().message.c_str());
    return 1;
  }
  std::printf("grid-centre design:\n");
  for (std::size_t i = 0; i < problem->specs.size(); ++i) {
    std::printf("  %-20s = %.4g\n", problem->specs[i].name.c_str(),
                (*specs)[i]);
  }

  // --- 2. The RL environment ----------------------------------------------
  env::EnvConfig env_config;
  env::SizingEnv sizing_env(problem, env_config);
  util::Rng rng(1);
  sizing_env.set_target(env::sample_target(*problem, rng));
  sizing_env.reset();
  // Nudge every parameter up once and observe the reward.
  std::vector<int> up(static_cast<std::size_t>(sizing_env.num_params()), 2);
  auto sr = sizing_env.step(up);
  std::printf("\none env step: reward=%.3f done=%d\n", sr.reward,
              sr.done ? 1 : 0);

  // --- 3. Train on sampled targets, evaluate on a frozen holdout ----------
  // The spec subsystem (src/spec/) makes the paper's protocol explicit:
  // training draws episode targets from a sampler over the spec space,
  // while a holdout SpecSuite — generated from suite_seed alone, never
  // trained on — is probed at checkpoint intervals to watch generalization.
  core::AutoCktConfig config;
  config.ppo.max_iterations = static_cast<int>(args.get_int("iterations", 8));
  config.ppo.steps_per_iteration = 800;
  config.holdout_target_count = 25;
  config.holdout_interval = 4;
  std::printf("\ntraining a small agent (%d iterations)...\n",
              config.ppo.max_iterations);
  auto outcome =
      core::train_agent(problem, config, [](const rl::IterationStats& s) {
        if (s.holdout_evaluated) {
          std::printf("  iter %2d  train goal rate %.2f  holdout %.2f\n",
                      s.iteration, s.goal_rate, s.holdout_goal_rate);
        }
      });
  if (outcome.history.iterations.empty()) {
    std::printf("no training iterations ran (agent stays at init)\n");
  } else {
    std::printf("final mean episode reward: %.2f\n",
                outcome.history.iterations.back().mean_episode_reward);
  }

  // The paper's generalization sweep: a suite of unseen targets, rolled out
  // through a VectorSizingEnv — every tick is one batched policy forward
  // plus one evaluate_batch() fanned out by the backend stack. The same
  // named suite can be saved to CSV and replayed against any baseline.
  const spec::SpecSuite deploy_suite =
      core::make_deploy_suite(*problem, 100, /*suite_seed=*/0xdeb101);
  const auto stats = core::deploy_agent(outcome.agent, problem, deploy_suite,
                                        config.env_config);
  std::printf("deployment on %zu fresh targets (%s): reached %d, "
              "avg steps %.1f\n",
              deploy_suite.size(), deploy_suite.name().c_str(),
              stats.reached_count(), stats.avg_steps_reached());

  // Train-vs-holdout scorecard with the frozen agent.
  if (!outcome.holdout_suite.empty()) {
    const auto report = core::evaluate_generalization(
        outcome.agent, problem, outcome.train_suite, outcome.holdout_suite,
        config.env_config);
    std::printf("generalization: train %.2f vs holdout %.2f (gap %.2f)\n",
                report.train_goal_rate(), report.holdout_goal_rate(),
                report.gap());
  }

  // --- 4. The evaluation backend keeps the books --------------------------
  // Training + deployment share one backend stack (memo cache over the
  // batch pool over the simulator), so repeat visits to grid points are
  // free and every simulator invocation is accounted for.
  std::printf("\ntraining eval stats:   %s\n",
              outcome.history.eval_stats.summary().c_str());
  std::printf("deployment eval stats: %s\n",
              stats.eval_stats.summary().c_str());
  const auto again = core::deploy_agent(outcome.agent, problem, deploy_suite,
                                        config.env_config);
  std::printf("same targets again:    %s\n",
              again.eval_stats.summary().c_str());
  std::printf("\n(see train_two_stage_opamp / transfer_to_pex for the full "
              "paper flows)\n");
  return 0;
}
