// Transfer learning to post-layout extraction (paper Section III-D,
// Fig. 13-14): train the agent on cheap schematic simulations of the
// negative-gm OTA, then deploy it — with NO further training — on the PEX
// environment (geometry-driven parasitics + worst-case PVT corners).
//
// Usage: transfer_to_pex [--iterations=N] [--steps=N] [--targets=N] [--seed=S]

#include <cstdio>
#include <memory>

#include "autockt/autockt.hpp"
#include "autockt/experiments.hpp"
#include "circuits/problems.hpp"
#include "util/cli.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);

  auto schematic = std::make_shared<const circuits::SizingProblem>(
      circuits::make_ngm_problem());
  auto pex = std::make_shared<const circuits::SizingProblem>(
      circuits::make_ngm_pex_problem());

  core::AutoCktConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
  config.env_config.horizon = static_cast<int>(args.get_int("horizon", 40));
  config.ppo.max_iterations = static_cast<int>(args.get_int("iterations", 60));
  config.ppo.steps_per_iteration =
      static_cast<int>(args.get_int("steps", 1500));

  std::printf("== phase 1: train on schematic simulations (%s)\n",
              schematic->name.c_str());
  auto outcome = core::train_agent(
      schematic, config, [](const rl::IterationStats& s) {
        if (s.iteration % 5 == 0) {
          std::printf("  iter %3d  mean_ep_reward %7.2f  goal_rate %.2f\n",
                      s.iteration, s.mean_episode_reward, s.goal_rate);
          std::fflush(stdout);
        }
      });
  std::printf("trained: %ld schematic simulations\n",
              outcome.history.total_env_steps);

  std::printf("\n== phase 2: deploy on schematic (sanity)\n");
  const auto n = static_cast<std::size_t>(args.get_int("targets", 20));
  // Separate named suites per environment (the PEX spec space pins phase
  // margin at 60), both derived from the suite seed alone.
  const auto sch_suite = core::make_deploy_suite(*schematic, n,
                                                 config.seed + 1);
  auto sch_stats = core::deploy_agent(outcome.agent, schematic, sch_suite,
                                      config.env_config);
  std::printf("schematic: reached %d/%d, avg steps %.1f\n",
              sch_stats.reached_count(), sch_stats.total(),
              sch_stats.avg_steps_reached());

  std::printf("\n== phase 3: transfer to PEX + PVT (no retraining)\n");
  const auto pex_suite = core::make_deploy_suite(*pex, n, config.seed + 2);
  const auto& pex_targets = pex_suite.targets();
  auto pex_stats =
      core::deploy_agent(outcome.agent, pex, pex_suite, config.env_config);
  std::printf("PEX: reached %d/%d, avg steps %.1f\n",
              pex_stats.reached_count(), pex_stats.total(),
              pex_stats.avg_steps_reached());

  // One sample trajectory, paper Fig. 14 style.
  auto trace = core::trace_trajectory(outcome.agent, pex, pex_targets.front(),
                                      config.env_config);
  std::printf("\nsample PEX trajectory (target:");
  for (std::size_t i = 0; i < pex->specs.size(); ++i) {
    std::printf(" %s=%.3g", pex->specs[i].name.c_str(), trace.target[i]);
  }
  std::printf(") reached=%d\n", trace.reached ? 1 : 0);
  for (std::size_t t = 0; t < trace.specs.size(); ++t) {
    std::printf("  step %2zu:", t);
    for (double v : trace.specs[t]) std::printf(" %10.4g", v);
    std::printf("\n");
  }
  return 0;
}
