// Head-to-head: genetic algorithm vs a trained AutoCkt agent on the same
// targets — the comparison behind the paper's "40x fewer simulations"
// claim, on whichever topology you pick.
//
// Usage: ga_vs_rl [--problem=tia|two_stage|ngm] [--targets=N]
//                 [--iterations=N] [--seed=S]

#include <cstdio>
#include <memory>
#include <string>

#include "autockt/autockt.hpp"
#include "autockt/experiments.hpp"
#include "circuits/problems.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace autockt;

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::string which = args.get("problem", "ngm");

  circuits::SizingProblem built;
  if (which == "tia") {
    built = circuits::make_tia_problem();
  } else if (which == "two_stage") {
    built = circuits::make_two_stage_problem();
  } else if (which == "ngm") {
    built = circuits::make_ngm_problem();
  } else {
    std::fprintf(stderr, "unknown problem '%s'\n", which.c_str());
    return 1;
  }
  auto problem =
      std::make_shared<const circuits::SizingProblem>(std::move(built));

  core::AutoCktConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  config.env_config.horizon = which == "two_stage" ? 45 : 40;
  config.ppo.max_iterations = static_cast<int>(args.get_int("iterations", 60));
  config.ppo.steps_per_iteration = 1500;

  std::printf("training AutoCkt on %s...\n", problem->name.c_str());
  auto outcome = core::train_agent(problem, config);
  std::printf("trained in %ld env steps (a one-time cost amortized over "
              "every future target)\n",
              outcome.history.total_env_steps);

  // One shared deployment suite: RL and GA score against byte-identical
  // targets (generated from the suite seed, independent of training).
  const auto n = static_cast<std::size_t>(args.get_int("targets", 8));
  const spec::SpecSuite suite =
      core::make_deploy_suite(*problem, n, config.seed + 1);

  // RL: per-target deployment cost.
  const auto rl_stats =
      core::deploy_agent(outcome.agent, problem, suite, config.env_config);

  // GA: from-scratch optimization per target (the paper's protocol with a
  // population-size sweep, keeping the best run).
  baselines::GaConfig ga;
  ga.max_evals = 10000;
  ga.seed = config.seed;
  const auto ga_agg = core::run_ga_over_suite(*problem, suite, ga,
                                              {20, 40, 80});

  util::Table table({"method", "targets reached", "avg sims per target"});
  table.add_row({"AutoCkt (deployed)",
                 std::to_string(rl_stats.reached_count()) + "/" +
                     std::to_string(rl_stats.total()),
                 util::Table::num(rl_stats.avg_steps_reached(), 3)});
  table.add_row({"Genetic algorithm",
                 std::to_string(ga_agg.reached) + "/" +
                     std::to_string(ga_agg.targets),
                 util::Table::num(ga_agg.avg_evals_to_reach, 3)});
  table.print();
  std::printf("\nspeedup: %s fewer simulations per target\n",
              core::speedup_string(ga_agg.avg_evals_to_reach,
                                   rl_stats.avg_steps_reached()).c_str());
  std::printf("(the GA must restart from scratch for every new target; the "
              "agent reuses its design-space knowledge)\n");
  return 0;
}
